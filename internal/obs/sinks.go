package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"

	"envirotrack/internal/trace"
)

// JSONLSink writes one JSON object per event to an io.Writer, buffered.
// It is safe for concurrent use; events from parallel runs interleave at
// line granularity and carry their run tag, so a post-hoc
// `jq 'select(.run == N)'` recovers each run's deterministic stream.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
}

// NewJSONLSink wraps w. Call Flush before reading the output.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	s.buf = appendEventJSON(s.buf[:0], ev)
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf)
	s.mu.Unlock()
}

// Flush drains the buffer to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// appendEventJSON marshals ev without reflection: the sink sits on the
// simulator's hot path when tracing is on, and the field set is fixed.
// Sparse fields are omitted when zero.
func appendEventJSON(b []byte, ev Event) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, ev.At.Seconds(), 'f', 6, 64)
	b = append(b, `,"ev":`...)
	b = strconv.AppendQuote(b, ev.Type.String())
	b = append(b, `,"mote":`...)
	b = strconv.AppendInt(b, int64(ev.Mote), 10)
	b = append(b, `,"peer":`...)
	b = strconv.AppendInt(b, int64(ev.Peer), 10)
	if ev.Label != "" {
		b = append(b, `,"label":`...)
		b = strconv.AppendQuote(b, ev.Label)
	}
	if ev.CtxType != "" {
		b = append(b, `,"ctx":`...)
		b = strconv.AppendQuote(b, ev.CtxType)
	}
	b = append(b, `,"x":`...)
	b = strconv.AppendFloat(b, ev.Pos.X, 'f', -1, 64)
	b = append(b, `,"y":`...)
	b = strconv.AppendFloat(b, ev.Pos.Y, 'f', -1, 64)
	if ev.Kind != "" {
		b = append(b, `,"kind":`...)
		b = strconv.AppendQuote(b, string(ev.Kind))
	}
	if ev.Seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendUint(b, ev.Seq, 10)
	}
	if ev.Origin != 0 {
		b = append(b, `,"origin":`...)
		b = strconv.AppendInt(b, int64(ev.Origin), 10)
	}
	if ev.Frame != 0 {
		b = append(b, `,"frame":`...)
		b = strconv.AppendUint(b, ev.Frame, 10)
	}
	if ev.Bits != 0 {
		b = append(b, `,"bits":`...)
		b = strconv.AppendInt(b, int64(ev.Bits), 10)
	}
	if ev.Cause != "" {
		b = append(b, `,"cause":`...)
		b = strconv.AppendQuote(b, ev.Cause)
	}
	b = append(b, `,"run":`...)
	b = strconv.AppendInt(b, ev.Run, 10)
	b = append(b, '}')
	return b
}

// RingSink keeps the last N events for post-mortem dumps: attach it
// always-on (it is cheap), and on an assertion failure dump the tail of
// protocol history instead of re-running with printf.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRingSink builds a ring holding the last capacity events (min 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, 0, capacity)}
}

// Emit implements Sink.
func (s *RingSink) Emit(ev Event) {
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, ev)
	} else {
		s.buf[s.next] = ev
		s.next = (s.next + 1) % cap(s.buf)
	}
	s.total++
	s.mu.Unlock()
}

// Total returns how many events were ever emitted into the ring.
func (s *RingSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Dump renders the retained events as JSONL (for crash reports and test
// failure output).
func (s *RingSink) Dump() string {
	var b []byte
	for _, ev := range s.Events() {
		b = appendEventJSON(b, ev)
		b = append(b, '\n')
	}
	return string(b)
}

// CounterSink tallies events by type — the cheapest always-on sink.
type CounterSink struct {
	mu     sync.Mutex
	counts map[EventType]uint64
}

// NewCounterSink builds an empty counter sink.
func NewCounterSink() *CounterSink {
	return &CounterSink{counts: make(map[EventType]uint64)}
}

// Emit implements Sink.
func (s *CounterSink) Emit(ev Event) {
	s.mu.Lock()
	s.counts[ev.Type]++
	s.mu.Unlock()
}

// Count returns the tally for one event type.
func (s *CounterSink) Count(t EventType) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[t]
}

// Counts returns a copy of all tallies.
func (s *CounterSink) Counts() map[EventType]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[EventType]uint64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// StatsSink reconstructs radio accounting from the event stream into an
// existing trace.Stats: frame send/receive/loss/undelivered events and
// CPU-overload drops map onto the same counters the medium records
// directly. It demonstrates that the event stream carries the full
// information of the aggregate counters (pinned by TestStatsSinkMatchesMedium)
// and lets external consumers rebuild per-kind loss tables from a JSONL
// trace alone.
type StatsSink struct {
	mu    sync.Mutex
	Stats *trace.Stats
}

// NewStatsSink wraps st (which must be non-nil).
func NewStatsSink(st *trace.Stats) *StatsSink {
	return &StatsSink{Stats: st}
}

// Emit implements Sink.
func (s *StatsSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Type {
	case EvFrameSent:
		s.Stats.RecordSend(ev.Kind, ev.Bits)
	case EvFrameReceived:
		s.Stats.RecordReceive(ev.Kind)
	case EvFrameLost:
		s.Stats.RecordLoss(ev.Kind, lossCauseOf(ev.Cause))
	case EvFrameUndelivered:
		s.Stats.RecordUndelivered(ev.Kind)
	case EvCPUOverload:
		s.Stats.RecordLoss(ev.Kind, trace.LossOverload)
	}
}

// lossCauseOf inverts trace.LossCause.String.
func lossCauseOf(s string) trace.LossCause {
	switch s {
	case "collision":
		return trace.LossCollision
	case "overload":
		return trace.LossOverload
	default:
		return trace.LossRandom
	}
}
