package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics (counters, gauges, histograms, and
// labelled counter vectors) and exposes them in Prometheus text format
// and via expvar. Metric reads and writes are lock-free (atomics);
// registration takes a lock. A single registry can be shared by every
// run of a parallel sweep.
type Registry struct {
	mu         sync.Mutex
	order      []string
	metrics    map[string]metric
	collectors []func()
}

// metric is anything the registry can expose.
type metric interface {
	writeProm(w io.Writer, name, help string) error
	snapshot() any
	helpText() string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// AddCollector registers a function run at exposition time (WriteProm and
// Snapshot), letting pull-style sources — Go runtime stats, scheduler
// self-profiles — refresh their gauges exactly when they are scraped.
// Collectors run outside the registry lock and may register metrics.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// collect runs the registered collectors (outside the lock).
func (r *Registry) collect() {
	r.mu.Lock()
	fns := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// register get-or-creates a named metric, enforcing type stability.
func (r *Registry) register(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named monotonically increasing counter, creating it
// on first use. Panics if the name is already a different metric type.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a counter", name, m))
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a gauge", name, m))
	}
	return g
}

// Histogram returns the named histogram with the given upper bucket
// bounds (ascending; +Inf is implicit), creating it on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, func() metric { return newHistogram(help, bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a histogram", name, m))
	}
	return h
}

// CounterVec returns the named counter family keyed by one label,
// creating it on first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := r.register(name, func() metric {
		return &CounterVec{help: help, label: label, children: make(map[string]*Counter)}
	})
	v, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a counter vec", name, m))
	}
	return v
}

// GaugeVec returns the named gauge family keyed by one label, creating it
// on first use.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	m := r.register(name, func() metric {
		return &GaugeVec{help: help, label: label, children: make(map[string]*Gauge)}
	})
	v, ok := m.(*GaugeVec)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a gauge vec", name, m))
	}
	return v
}

// WriteProm renders every metric in Prometheus text exposition format,
// in registration order.
func (r *Registry) WriteProm(w io.Writer) error {
	r.collect()
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]metric, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		if err := metrics[i].writeProm(w, n, metrics[i].helpText()); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a plain name -> value map (counters and gauges as
// numbers, histograms and vecs as nested maps) for JSON export and tests.
func (r *Registry) Snapshot() map[string]any {
	r.collect()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.metrics))
	for name, m := range r.metrics {
		out[name] = m.snapshot()
	}
	return out
}

// expvarPublished guards against double-publishing (expvar panics on
// duplicate names, and tests may build several registries).
var expvarPublished sync.Map

// Expvar publishes the registry under the given expvar name. The
// /debug/vars handler (served by etsim -pprof) then exposes a live JSON
// snapshot. Publishing the same name twice rebinds it to this registry.
func (r *Registry) Expvar(name string) {
	if _, loaded := expvarPublished.LoadOrStore(name, r); loaded {
		expvarPublished.Store(name, r)
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		v, _ := expvarPublished.Load(name)
		reg, ok := v.(*Registry)
		if !ok {
			return nil
		}
		return reg.Snapshot()
	}))
}

// promEscapeHelp escapes a HELP string per the Prometheus text exposition
// format: backslash and line feed only.
func promEscapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// promEscapeLabel escapes a label value per the exposition format:
// backslash, double-quote, and line feed. (strconv.Quote over-escapes —
// a tab rendered as \t reads back as a literal 't' under the
// three-escape grammar.)
func promEscapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// --- counter ---

// Counter is a monotonically increasing counter.
type Counter struct {
	v    atomic.Uint64
	help string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) helpText() string { return c.help }
func (c *Counter) snapshot() any    { return c.v.Load() }

func (c *Counter) writeProm(w io.Writer, name, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
		name, promEscapeHelp(help), name, name, c.v.Load())
	return err
}

// --- gauge ---

// Gauge is a float value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
	help string
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) helpText() string { return g.help }
func (g *Gauge) snapshot() any    { return g.Value() }

func (g *Gauge) writeProm(w io.Writer, name, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, promEscapeHelp(help), name, name, strconv.FormatFloat(g.Value(), 'g', -1, 64))
	return err
}

// --- histogram ---

// Histogram counts observations into cumulative buckets (Prometheus
// semantics: each bucket counts observations <= its upper bound).
type Histogram struct {
	help   string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

func newHistogram(help string, bounds []float64) *Histogram {
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) helpText() string { return h.help }

func (h *Histogram) snapshot() any {
	buckets := make(map[string]uint64, len(h.bounds)+1)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		buckets[strconv.FormatFloat(b, 'g', -1, 64)] = cum
	}
	buckets["+Inf"] = cum + h.counts[len(h.bounds)].Load()
	return map[string]any{"buckets": buckets, "sum": h.Sum(), "count": h.Count()}
}

func (h *Histogram) writeProm(w io.Writer, name, help string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, promEscapeHelp(help), name); err != nil {
		return err
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
			name, strconv.FormatFloat(b, 'g', -1, 64), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		name, strconv.FormatFloat(h.Sum(), 'g', -1, 64), name, h.count.Load())
	return err
}

// --- counter vec ---

// CounterVec is a family of counters distinguished by one label value
// (e.g. events_total{type="heartbeat_sent"}).
type CounterVec struct {
	help     string
	label    string
	mu       sync.Mutex
	order    []string
	children map[string]*Counter
}

// With returns the child counter for the given label value, creating it
// on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
		v.order = append(v.order, value)
		sort.Strings(v.order)
	}
	return c
}

// Value returns the count for a label value (0 when absent).
func (v *CounterVec) Value(value string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c.Value()
	}
	return 0
}

func (v *CounterVec) helpText() string { return v.help }

func (v *CounterVec) snapshot() any {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]uint64, len(v.children))
	for k, c := range v.children {
		out[k] = c.Value()
	}
	return out
}

func (v *CounterVec) writeProm(w io.Writer, name, help string) error {
	v.mu.Lock()
	values := append([]string(nil), v.order...)
	children := make([]*Counter, len(values))
	for i, val := range values {
		children[i] = v.children[val]
	}
	label := v.label
	v.mu.Unlock()
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, promEscapeHelp(help), name); err != nil {
		return err
	}
	for i, val := range values {
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, label, promEscapeLabel(val), children[i].Value()); err != nil {
			return err
		}
	}
	return nil
}

// --- gauge vec ---

// GaugeVec is a family of gauges distinguished by one label value
// (e.g. shard_mailbox_min_slack_seconds{pair="0->1"}).
type GaugeVec struct {
	help     string
	label    string
	mu       sync.Mutex
	order    []string
	children map[string]*Gauge
}

// With returns the child gauge for the given label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[value]
	if !ok {
		g = &Gauge{}
		v.children[value] = g
		v.order = append(v.order, value)
		sort.Strings(v.order)
	}
	return g
}

// Value returns the gauge value for a label value (0 when absent).
func (v *GaugeVec) Value(value string) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[value]; ok {
		return g.Value()
	}
	return 0
}

func (v *GaugeVec) helpText() string { return v.help }

func (v *GaugeVec) snapshot() any {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]float64, len(v.children))
	for k, g := range v.children {
		out[k] = g.Value()
	}
	return out
}

func (v *GaugeVec) writeProm(w io.Writer, name, help string) error {
	v.mu.Lock()
	values := append([]string(nil), v.order...)
	children := make([]*Gauge, len(values))
	for i, val := range values {
		children[i] = v.children[val]
	}
	label := v.label
	v.mu.Unlock()
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, promEscapeHelp(help), name); err != nil {
		return err
	}
	for i, val := range values {
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n", name, label, promEscapeLabel(val),
			strconv.FormatFloat(children[i].Value(), 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}
