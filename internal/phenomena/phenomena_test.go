package phenomena

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"envirotrack/internal/geom"
)

func TestStationary(t *testing.T) {
	s := Stationary{At: geom.Pt(3, 4)}
	if got := s.PositionAt(0); got != geom.Pt(3, 4) {
		t.Errorf("PositionAt(0) = %v", got)
	}
	if got := s.PositionAt(time.Hour); got != geom.Pt(3, 4) {
		t.Errorf("PositionAt(1h) = %v", got)
	}
	if s.Done(time.Hour) {
		t.Error("stationary trajectory should never be done")
	}
}

func TestLine(t *testing.T) {
	l := Line{Start: geom.Pt(0, 0.5), Dir: geom.Vec(1, 0), Speed: 0.1}
	got := l.PositionAt(10 * time.Second)
	if math.Abs(got.X-1) > 1e-9 || math.Abs(got.Y-0.5) > 1e-9 {
		t.Errorf("PositionAt(10s) = %v, want (1, 0.5)", got)
	}
	if l.Done(time.Hour) {
		t.Error("line is never done")
	}
}

func TestLineNormalizesDirection(t *testing.T) {
	l := Line{Start: geom.Pt(0, 0), Dir: geom.Vec(10, 0), Speed: 1}
	got := l.PositionAt(time.Second)
	if math.Abs(got.X-1) > 1e-9 {
		t.Errorf("direction not normalized: PositionAt(1s) = %v", got)
	}
}

func TestNewWaypointsValidation(t *testing.T) {
	if _, err := NewWaypoints(nil, 1); err == nil {
		t.Error("expected error for empty waypoint list")
	}
	if _, err := NewWaypoints([]geom.Point{geom.Pt(0, 0)}, 0); err == nil {
		t.Error("expected error for zero speed")
	}
	if _, err := NewWaypoints([]geom.Point{geom.Pt(0, 0)}, -1); err == nil {
		t.Error("expected error for negative speed")
	}
}

func TestWaypointsInterpolation(t *testing.T) {
	w, err := NewWaypoints([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 5)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.PositionAt(0); got != geom.Pt(0, 0) {
		t.Errorf("PositionAt(0) = %v", got)
	}
	got := w.PositionAt(5 * time.Second)
	if math.Abs(got.X-5) > 1e-9 || math.Abs(got.Y) > 1e-9 {
		t.Errorf("PositionAt(5s) = %v, want (5,0)", got)
	}
	got = w.PositionAt(12 * time.Second)
	if math.Abs(got.X-10) > 1e-9 || math.Abs(got.Y-2) > 1e-9 {
		t.Errorf("PositionAt(12s) = %v, want (10,2)", got)
	}
	if w.EndTime() != 15*time.Second {
		t.Errorf("EndTime = %v, want 15s", w.EndTime())
	}
	if got := w.PositionAt(time.Hour); got != geom.Pt(10, 5) {
		t.Errorf("PositionAt beyond end = %v, want final point", got)
	}
	if w.Done(10 * time.Second) {
		t.Error("Done too early")
	}
	if !w.Done(15 * time.Second) {
		t.Error("not Done at end time")
	}
}

func TestWaypointsSinglePoint(t *testing.T) {
	w, err := NewWaypoints([]geom.Point{geom.Pt(2, 2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.PositionAt(time.Minute); got != geom.Pt(2, 2) {
		t.Errorf("single waypoint PositionAt = %v", got)
	}
	if !w.Done(0) {
		t.Error("single waypoint should be done immediately")
	}
}

// Property: a waypoint target's speed between consecutive samples never
// exceeds the configured speed (within tolerance).
func TestWaypointsSpeedBound(t *testing.T) {
	f := func(seed int64) bool {
		pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 3), geom.Pt(1, 7), geom.Pt(9, 9)}
		const speed = 2.0
		w, err := NewWaypoints(pts, speed)
		if err != nil {
			return false
		}
		dt := 100 * time.Millisecond
		prev := w.PositionAt(0)
		for ti := dt; ti < w.EndTime()+time.Second; ti += dt {
			cur := w.PositionAt(ti)
			if prev.Dist(cur) > speed*dt.Seconds()+1e-6 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestTargetActiveWindow(t *testing.T) {
	tg := &Target{
		Name:         "t",
		Kind:         "vehicle",
		Traj:         Stationary{At: geom.Pt(0, 0)},
		AppearsAt:    time.Second,
		DisappearsAt: 3 * time.Second,
	}
	tests := []struct {
		at   time.Duration
		want bool
	}{
		{0, false},
		{time.Second, true},
		{2 * time.Second, true},
		{3 * time.Second, false},
		{time.Minute, false},
	}
	for _, tt := range tests {
		if got := tg.Active(tt.at); got != tt.want {
			t.Errorf("Active(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestTargetAlwaysActiveByDefault(t *testing.T) {
	tg := &Target{Traj: Stationary{}}
	if !tg.Active(0) || !tg.Active(time.Hour) {
		t.Error("default target should always be active")
	}
}

func TestFieldDetections(t *testing.T) {
	tank := &Target{
		Name:            "tank",
		Kind:            "vehicle",
		Traj:            Line{Start: geom.Pt(0, 0), Dir: geom.Vec(1, 0), Speed: 1},
		SignatureRadius: 1,
	}
	fire := &Target{
		Name:            "fire",
		Kind:            "fire",
		Traj:            Stationary{At: geom.Pt(5, 5)},
		SignatureRadius: 2,
	}
	f := NewField(tank, fire)

	// At t=0 the tank is at (0,0): a sensor at (0.5, 0) detects it.
	dets := f.Detections("vehicle", geom.Pt(0.5, 0), 0)
	if len(dets) != 1 || dets[0] != tank {
		t.Errorf("Detections = %v, want tank", dets)
	}
	// The fire sensor sees nothing of kind vehicle.
	if dets := f.Detections("vehicle", geom.Pt(5, 5), 0); len(dets) != 0 {
		t.Errorf("unexpected vehicle detection at fire location: %v", dets)
	}
	// After 10 s the tank has moved to (10, 0).
	if dets := f.Detections("vehicle", geom.Pt(0.5, 0), 10*time.Second); len(dets) != 0 {
		t.Errorf("tank should be out of range after moving: %v", dets)
	}
	if dets := f.Detections("vehicle", geom.Pt(10.5, 0), 10*time.Second); len(dets) != 1 {
		t.Errorf("tank should be detected at new position: %v", dets)
	}
	// Fire detection within its larger signature.
	if dets := f.Detections("fire", geom.Pt(6.5, 5), 0); len(dets) != 1 {
		t.Errorf("fire not detected: %v", dets)
	}
}

func TestFieldTargetsOfKind(t *testing.T) {
	a := &Target{Kind: "x", Traj: Stationary{}}
	b := &Target{Kind: "x", Traj: Stationary{}, AppearsAt: time.Minute}
	c := &Target{Kind: "y", Traj: Stationary{}}
	f := NewField(a, b, c)
	got := f.TargetsOfKind("x", 0)
	if len(got) != 1 || got[0] != a {
		t.Errorf("TargetsOfKind(x, 0) = %v, want [a]", got)
	}
	got = f.TargetsOfKind("x", 2*time.Minute)
	if len(got) != 2 {
		t.Errorf("TargetsOfKind(x, 2m) = %d targets, want 2", len(got))
	}
}

func TestFieldAdd(t *testing.T) {
	f := NewField()
	if len(f.Targets()) != 0 {
		t.Fatal("new empty field has targets")
	}
	f.Add(&Target{Kind: "x", Traj: Stationary{}})
	if len(f.Targets()) != 1 {
		t.Error("Add did not append")
	}
}

func TestIntensityInverseCube(t *testing.T) {
	tg := &Target{Kind: "vehicle", Traj: Stationary{At: geom.Pt(0, 0)}, Amplitude: 8}
	f := NewField(tg)
	// At distance 2: 8/8 = 1.
	if got := f.Intensity("vehicle", geom.Pt(2, 0), 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("Intensity at d=2 = %v, want 1", got)
	}
	// Distance below 1 clamps to amplitude.
	if got := f.Intensity("vehicle", geom.Pt(0.1, 0), 0); math.Abs(got-8) > 1e-9 {
		t.Errorf("Intensity at d<1 = %v, want 8 (clamped)", got)
	}
	// Wrong kind contributes nothing.
	if got := f.Intensity("fire", geom.Pt(2, 0), 0); got != 0 {
		t.Errorf("Intensity for absent kind = %v, want 0", got)
	}
}

func TestIntensityMonotoneDecreasing(t *testing.T) {
	tg := &Target{Kind: "v", Traj: Stationary{At: geom.Pt(0, 0)}}
	f := NewField(tg)
	prev := math.Inf(1)
	for d := 1.0; d < 20; d += 0.5 {
		cur := f.Intensity("v", geom.Pt(d, 0), 0)
		if cur > prev {
			t.Fatalf("intensity increased with distance at d=%v", d)
		}
		prev = cur
	}
}

func TestIntensitySumsMultipleTargets(t *testing.T) {
	a := &Target{Kind: "v", Traj: Stationary{At: geom.Pt(-2, 0)}}
	b := &Target{Kind: "v", Traj: Stationary{At: geom.Pt(2, 0)}}
	f := NewField(a, b)
	got := f.Intensity("v", geom.Pt(0, 0), 0)
	want := 2.0 / 8.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("summed intensity = %v, want %v", got, want)
	}
}
