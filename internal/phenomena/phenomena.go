// Package phenomena models the tracked entities of the physical
// environment: vehicles, fires, and other targets moving through the sensor
// field. Positions are pure functions of virtual time so that the
// environment is deterministic and needs no events of its own.
package phenomena

import (
	"fmt"
	"time"

	"envirotrack/internal/geom"
)

// Trajectory yields the position of an entity at a given virtual time.
type Trajectory interface {
	// PositionAt returns the entity position at time t.
	PositionAt(t time.Duration) geom.Point
	// Done reports whether the entity has reached the end of its path at t
	// (a stationary or cyclic trajectory is never done).
	Done(t time.Duration) bool
}

// Stationary is a trajectory that never moves.
type Stationary struct {
	At geom.Point
}

// PositionAt implements Trajectory.
func (s Stationary) PositionAt(time.Duration) geom.Point { return s.At }

// Done implements Trajectory.
func (s Stationary) Done(time.Duration) bool { return false }

// Line moves at constant speed from Start in the given direction, forever.
// Speed is in grid units per second ("hops per second" in the paper's
// terminology, since grid spacing is one hop).
type Line struct {
	Start geom.Point
	Dir   geom.Vector // normalized internally
	Speed float64     // grid units per second
}

// PositionAt implements Trajectory.
func (l Line) PositionAt(t time.Duration) geom.Point {
	d := l.Dir.Unit().Scale(l.Speed * t.Seconds())
	return l.Start.Add(d)
}

// Done implements Trajectory.
func (l Line) Done(time.Duration) bool { return false }

// Waypoints moves at constant speed through an ordered list of points and
// stops at the final one.
type Waypoints struct {
	Points []geom.Point
	Speed  float64 // grid units per second

	// legs caches cumulative leg start times; built lazily.
	legs []time.Duration
}

// NewWaypoints builds a waypoint trajectory. It returns an error for fewer
// than one point or a non-positive speed.
func NewWaypoints(pts []geom.Point, speed float64) (*Waypoints, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("phenomena: waypoint trajectory needs at least one point")
	}
	if speed <= 0 {
		return nil, fmt.Errorf("phenomena: speed must be positive, got %v", speed)
	}
	w := &Waypoints{Points: append([]geom.Point(nil), pts...), Speed: speed}
	w.buildLegs()
	return w, nil
}

func (w *Waypoints) buildLegs() {
	w.legs = make([]time.Duration, len(w.Points))
	var elapsed time.Duration
	for i := 1; i < len(w.Points); i++ {
		d := w.Points[i-1].Dist(w.Points[i])
		elapsed += time.Duration(d / w.Speed * float64(time.Second))
		w.legs[i] = elapsed
	}
}

// EndTime returns when the final waypoint is reached.
func (w *Waypoints) EndTime() time.Duration {
	if len(w.legs) == 0 {
		w.buildLegs()
	}
	return w.legs[len(w.legs)-1]
}

// PositionAt implements Trajectory.
func (w *Waypoints) PositionAt(t time.Duration) geom.Point {
	if len(w.legs) == 0 {
		w.buildLegs()
	}
	if t <= 0 || len(w.Points) == 1 {
		return w.Points[0]
	}
	if t >= w.EndTime() {
		return w.Points[len(w.Points)-1]
	}
	// Find the active leg.
	for i := 1; i < len(w.Points); i++ {
		if t < w.legs[i] {
			legDur := w.legs[i] - w.legs[i-1]
			frac := float64(t-w.legs[i-1]) / float64(legDur)
			return w.Points[i-1].Lerp(w.Points[i], frac)
		}
	}
	return w.Points[len(w.Points)-1]
}

// Done implements Trajectory.
func (w *Waypoints) Done(t time.Duration) bool {
	return t >= w.EndTime()
}

// Target is one tracked entity: a typed phenomenon following a trajectory
// with a sensory signature.
type Target struct {
	// Name identifies the target in traces ("tank-1").
	Name string
	// Kind is the phenomenon type sensed by motes ("vehicle", "fire").
	Kind string
	// Traj is the target's motion.
	Traj Trajectory
	// SignatureRadius is the distance (grid units) within which a sensor
	// detects the target — the "sensory signature" size of Section 6.2.
	SignatureRadius float64
	// Amplitude scales intensity readings (e.g. ferrous mass for magnetic
	// sensing, heat output for fire). 1 if zero.
	Amplitude float64
	// AppearsAt and DisappearsAt bound the target's presence in the field;
	// DisappearsAt zero means "never disappears".
	AppearsAt    time.Duration
	DisappearsAt time.Duration
}

// Active reports whether the target exists in the field at time t.
func (tg *Target) Active(t time.Duration) bool {
	if t < tg.AppearsAt {
		return false
	}
	if tg.DisappearsAt > 0 && t >= tg.DisappearsAt {
		return false
	}
	return true
}

// PositionAt returns the target position at t.
func (tg *Target) PositionAt(t time.Duration) geom.Point {
	return tg.Traj.PositionAt(t)
}

// amplitude returns the effective amplitude (defaulting to 1).
func (tg *Target) amplitude() float64 {
	if tg.Amplitude <= 0 {
		return 1
	}
	return tg.Amplitude
}

// Field is the collection of targets in the environment.
type Field struct {
	targets []*Target
}

// NewField creates a field with the given targets.
func NewField(targets ...*Target) *Field {
	return &Field{targets: append([]*Target(nil), targets...)}
}

// Add appends a target to the field.
func (f *Field) Add(tg *Target) {
	f.targets = append(f.targets, tg)
}

// Targets returns the targets (shared slice; callers must not mutate).
func (f *Field) Targets() []*Target {
	return f.targets
}

// TargetsOfKind returns the active targets of the given kind at time t.
func (f *Field) TargetsOfKind(kind string, t time.Duration) []*Target {
	var out []*Target
	for _, tg := range f.targets {
		if tg.Kind == kind && tg.Active(t) {
			out = append(out, tg)
		}
	}
	return out
}

// Detections returns the active targets of the given kind within their
// signature radius of position pos at time t.
func (f *Field) Detections(kind string, pos geom.Point, t time.Duration) []*Target {
	var out []*Target
	for _, tg := range f.targets {
		if tg.Kind != kind || !tg.Active(t) {
			continue
		}
		if tg.PositionAt(t).Within(pos, tg.SignatureRadius) {
			out = append(out, tg)
		}
	}
	return out
}

// DetectsAny reports whether any active kind-k target covers position pos
// at time t. It is the allocation-free form of len(Detections(...)) > 0,
// which the periodic sensing scan evaluates on every mote every tick.
func (f *Field) DetectsAny(kind string, pos geom.Point, t time.Duration) bool {
	for _, tg := range f.targets {
		if tg.Kind != kind || !tg.Active(t) {
			continue
		}
		if tg.PositionAt(t).Within(pos, tg.SignatureRadius) {
			return true
		}
	}
	return false
}

// Intensity returns the summed sensory intensity of kind-k targets at
// position pos and time t, using an inverse-cube law (the attenuation of
// magnetic disturbances cited in Section 6.1). Intensity at distances below
// 1 grid unit is clamped to the amplitude to avoid singularities.
func (f *Field) Intensity(kind string, pos geom.Point, t time.Duration) float64 {
	var total float64
	for _, tg := range f.targets {
		if tg.Kind != kind || !tg.Active(t) {
			continue
		}
		d := tg.PositionAt(t).Dist(pos)
		if d < 1 {
			d = 1
		}
		total += tg.amplitude() / (d * d * d)
	}
	return total
}
