// Package invariant is a protocol-safety checker for EnviroTrack runs:
// an obs.Sink that replays the structured event stream of one run and
// mechanically checks group-management invariants the paper's aggregate
// metrics never examine. It is built to be sound on nominal runs — every
// rule only fires when the event stream *proves* a violation, using
// conservative attribution and grace windows — so a non-empty violation
// list always means a protocol bug (or an injected mutation), never
// simulator noise.
//
// The checked invariants:
//
//	I1 dual-leader        At most one active leader per context label:
//	                      two non-failed motes that both heartbeat the
//	                      same label, within direct radio range of each
//	                      other, for longer than DualLeaderGrace.
//	I2 takeover-silence   A receive-timer takeover may fire only after
//	                      >= ReceiveFactor x heartbeat of label silence.
//	                      Silence is bounded via per-sender heartbeat
//	                      attribution with the protocol's own (label,
//	                      leader, seq) dedup mirrored, so duplicated or
//	                      flood-forwarded copies never shrink it.
//	I3 report-after-teardown  No member keeps sending reports once its
//	                      label has had no leader for TeardownGrace.
//	I4 directory-stale    No directory registration for a label that has
//	                      had no leader for DirectoryGrace (eventual
//	                      consistency of the directory service).
//	I5 report-cadence     A stable member reports at least every
//	                      ReportPeriod + CadenceSlack (freshness
//	                      Pe = Le - d from Section 5.3).
//
// The I1–I5 rules above assume heartbeat group management and only run
// for the leader backend. A run under the passive-traces backend is
// checked against its own rule set instead (see passive.go): trace
// sequence monotonicity, no reports without a supporting trace, and the
// estimate-staleness bound. Config.Backend selects the rule set.
//
// The checker consumes the stream of a single run in event order; attach
// one Checker per run (the eval harness builds one per scenario seed).
package invariant

import (
	"fmt"
	"sync"
	"time"

	"envirotrack/internal/obs"
	"envirotrack/internal/trace"
)

// Config parameterizes the checker with the protocol timing of the run
// under observation. The zero value applies the group-config defaults.
type Config struct {
	// Backend names the tracking backend of the run under observation
	// (a track registry name; empty means "leader"). The leader rules
	// I1–I5 assume heartbeat group management; "passive" selects the
	// passive-traces rule set instead.
	Backend string
	// Heartbeat is the leader heartbeat period — and, for the passive
	// backend, the trace deposit period (default 500ms).
	Heartbeat time.Duration
	// ReceiveFactor scales the receive timer (default 2.1).
	ReceiveFactor float64
	// JitterFrac is the receive-timer jitter fraction (default 0.1).
	JitterFrac float64
	// ReportPeriod is the expected member report cadence Pe. Zero
	// disables the I5 cadence check.
	ReportPeriod time.Duration
	// CommRadius is the radio range; the dual-leader rule only fires for
	// leader pairs within direct range (out-of-reach pairs cannot merge
	// by protocol means — Figure 4's h=0 cells create them by design).
	// Zero treats every pair as in range.
	CommRadius float64
	// Partitions lists network partitions the run is known to inject
	// (e.g. from a chaos schedule). A dual-leader pair severed by an
	// active partition is exempt — one leader per side is the only
	// reachable outcome — and the pair's grace clock restarts when the
	// partition heals.
	Partitions []PartitionWindow

	// DualLeaderGrace is how long same-label dual leadership must persist
	// in-range before it is a violation; transient overlap is legitimate
	// (a takeover resolves by weight-ordered yield within a couple of
	// heartbeats). Default 6 x Heartbeat.
	DualLeaderGrace time.Duration
	// TeardownGrace is how long a leaderless label's members may keep
	// reporting (their receive timers need up to
	// ReceiveFactor x (1+JitterFrac) heartbeats to notice). Default that
	// window plus 1s of transmission slack.
	TeardownGrace time.Duration
	// CadenceSlack pads the I5 report-gap bound against CSMA deferrals
	// and first-report desynchronization. Default ReportPeriod/2 + 500ms.
	CadenceSlack time.Duration
	// DirectoryGrace bounds how stale a directory registration may be.
	// Default 3s (one transport round-trip plus scheduling slack).
	DirectoryGrace time.Duration
	// TraceStaleness is the passive backend's trace-field staleness
	// bound, WaitFactor x heartbeat (default 4.2 x Heartbeat, the
	// group-config default WaitFactor). Only used when Backend is
	// "passive"; the eval harness passes passive.Staleness here so a
	// scenario's tuned WaitFactor flows through.
	TraceStaleness time.Duration
	// TraceSlack pads the passive staleness bounds against transmission
	// and event-delivery skew. Default 1s.
	TraceSlack time.Duration
	// MaxViolations caps the retained violation list (the count keeps
	// incrementing). Default 100.
	MaxViolations int
}

func (c Config) withDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.ReceiveFactor <= 0 {
		c.ReceiveFactor = 2.1
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	} else if c.JitterFrac == 0 {
		c.JitterFrac = 0.1
	}
	if c.DualLeaderGrace <= 0 {
		c.DualLeaderGrace = 6 * c.Heartbeat
	}
	if c.TeardownGrace <= 0 {
		c.TeardownGrace = c.noticeWindow() + time.Second
	}
	if c.CadenceSlack <= 0 {
		c.CadenceSlack = c.ReportPeriod/2 + 500*time.Millisecond
	}
	if c.DirectoryGrace <= 0 {
		c.DirectoryGrace = 3 * time.Second
	}
	if c.TraceStaleness <= 0 {
		c.TraceStaleness = time.Duration(float64(c.Heartbeat) * 4.2)
	}
	if c.TraceSlack <= 0 {
		c.TraceSlack = time.Second
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 100
	}
	return c
}

// PartitionWindow is one scheduled network partition the checker must
// account for: a vertical cut at X active from At until Until. Until <=
// At means the partition never heals.
type PartitionWindow struct {
	X     float64
	At    time.Duration
	Until time.Duration
}

// noticeWindow is the longest a member's receive timer can run: the
// jittered takeover timeout.
func (c Config) noticeWindow() time.Duration {
	return time.Duration(float64(c.Heartbeat) * c.ReceiveFactor * (1 + c.JitterFrac))
}

// minTakeoverSilence is the shortest legitimate silence before a
// receive-timer firing (jitter only lengthens the timer).
func (c Config) minTakeoverSilence() time.Duration {
	return time.Duration(float64(c.Heartbeat) * c.ReceiveFactor)
}

// Violation is one proven invariant breach.
type Violation struct {
	At        time.Duration `json:"at"`
	Invariant string        `json:"invariant"`
	Label     string        `json:"label,omitempty"`
	Mote      int           `json:"mote"`
	Peer      int           `json:"peer,omitempty"`
	Detail    string        `json:"detail"`
	Run       int64         `json:"run,omitempty"`
}

// Invariant rule names, as reported in Violation.Invariant.
const (
	DualLeader          = "dual-leader"
	TakeoverSilence     = "takeover-silence"
	ReportAfterTeardown = "report-after-teardown"
	DirectoryStale      = "directory-stale"
	ReportCadence       = "report-cadence"

	// Passive-traces backend rules (see passive.go).
	TraceMonotonic     = "trace-monotonic"
	ReportWithoutTrace = "report-without-trace"
	EstimateStale      = "estimate-stale"
)

// leaderRec is the checker's view of one mote's leadership of a label.
type leaderRec struct {
	mote   int
	pos    obsPos
	since  time.Duration // leadership start, or last restore
	lastHB time.Duration // last heartbeat sent for the label
	failed bool
}

type obsPos struct{ x, y float64 }

func (p obsPos) within(q obsPos, r float64) bool {
	dx, dy := p.x-q.x, p.y-q.y
	return dx*dx+dy*dy <= r*r
}

// hbSend is one attributable heartbeat transmission by a sender: the
// label, originating leader, and sequence number it carried.
type hbSend struct {
	label  string
	origin int
	seq    uint64
	at     time.Duration
}

// attrib keeps a sender's last two transmissions of a kind so a
// reception can be matched to the transmission in flight (with zero
// propagation delay a send at the same instant as a reception cannot be
// its source, hence the strict < in lookup).
type attrib struct {
	prev, cur hbSend
	n         int
}

func (a *attrib) push(s hbSend) {
	a.prev, a.cur = a.cur, s
	a.n++
}

// lookup resolves the transmission a reception at time t came from, or
// ok=false when the sender's recent sends are ambiguous (two different
// labels in flight — the conservative answer is "unknown").
func (a *attrib) lookup(t time.Duration) (hbSend, bool) {
	if a == nil || a.n == 0 {
		return hbSend{}, false
	}
	if a.cur.at < t {
		return a.cur, true
	}
	if a.n >= 2 && a.prev.at < t {
		if a.prev.label != a.cur.label || a.prev.origin != a.cur.origin {
			// Two distinct in-flight candidates: don't guess.
			return hbSend{}, false
		}
		return a.prev, true
	}
	return hbSend{}, false
}

// memberRec is the checker's view of one mote's membership.
type memberRec struct {
	label string
	since time.Duration
}

// rearmRec is the latest reception proven to have re-armed a member's
// receive timer.
type rearmRec struct {
	label string
	at    time.Duration
}

// Checker consumes one run's event stream and accumulates violations.
// It implements obs.Sink; all state is guarded by a mutex so a checker
// can safely share a bus with other sinks, but it assumes the events of
// a single run arriving in time order.
type Checker struct {
	mu  sync.Mutex
	cfg Config

	leaders map[string]map[int]*leaderRec // label -> mote -> rec
	multi   map[string]bool               // labels with >= 2 leader recs
	flagged map[string]bool               // dedup: label|a|b dual-leader pairs

	members  map[int]*memberRec
	rearms   map[int]rearmRec
	seen     map[int]map[string]uint64 // receiver -> label/origin -> max seq (protocol dedup mirror)
	hbSends  map[int]*attrib           // sender -> recent heartbeat transmissions
	relSends map[int]*attrib           // sender -> recent relinquish transmissions
	stepDown map[int]string            // sender -> label of last step-down

	failedNow  map[int]bool
	lastFault  map[int]time.Duration // last fail or restore event
	overloaded map[int]bool

	everLed    map[string]bool
	leaderGone map[string]time.Duration // label -> when its last live leader vanished

	lastReport map[int]rearmRec // member -> label + last report (or join) time

	// passive holds the passive-backend rule state; nil for leader runs
	// (the backend selects the whole rule set, see Emit).
	passive *passiveState

	now        time.Duration
	run        int64
	events     uint64
	violations []Violation
	count      int
}

// New builds a checker for one run.
func New(cfg Config) *Checker {
	c := &Checker{
		cfg:        cfg.withDefaults(),
		leaders:    make(map[string]map[int]*leaderRec),
		multi:      make(map[string]bool),
		flagged:    make(map[string]bool),
		members:    make(map[int]*memberRec),
		rearms:     make(map[int]rearmRec),
		seen:       make(map[int]map[string]uint64),
		hbSends:    make(map[int]*attrib),
		relSends:   make(map[int]*attrib),
		stepDown:   make(map[int]string),
		failedNow:  make(map[int]bool),
		lastFault:  make(map[int]time.Duration),
		overloaded: make(map[int]bool),
		everLed:    make(map[string]bool),
		leaderGone: make(map[string]time.Duration),
		lastReport: make(map[int]rearmRec),
	}
	if c.cfg.Backend == "passive" {
		c.passive = newPassiveState()
	}
	return c
}

// Emit implements obs.Sink. It only does the backend-independent
// bookkeeping itself; every protocol assumption lives in the
// backend-specific rule sets it dispatches to.
func (c *Checker) Emit(ev obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events++
	c.run = ev.Run
	if ev.At > c.now {
		c.now = ev.At
	}
	if c.passive != nil {
		c.emitPassive(ev)
		return
	}
	c.emitLeader(ev)
}

// emitLeader applies the heartbeat group-management rules I1–I5.
func (c *Checker) emitLeader(ev obs.Event) {
	pos := obsPos{x: ev.Pos.X, y: ev.Pos.Y}

	switch ev.Type {
	case obs.EvMoteFailed:
		c.failedNow[ev.Mote] = true
		c.lastFault[ev.Mote] = ev.At
		delete(c.rearms, ev.Mote)
		for label, recs := range c.leaders {
			if rec, ok := recs[ev.Mote]; ok {
				rec.failed = true
				c.refreshLeaderGone(label, ev.At)
			}
		}

	case obs.EvMoteRestored:
		c.failedNow[ev.Mote] = false
		c.lastFault[ev.Mote] = ev.At
		for label, recs := range c.leaders {
			if rec, ok := recs[ev.Mote]; ok && rec.failed {
				rec.failed = false
				rec.since = ev.At
				c.refreshLeaderGone(label, ev.At)
			}
		}

	case obs.EvLabelCreated, obs.EvLabelTakeover, obs.EvLabelRelinquish:
		c.startLeadership(ev.Mote, ev.Label, ev.At, pos)

	case obs.EvLabelYield, obs.EvLabelDeleted, obs.EvLeaderStepDown:
		if ev.Type == obs.EvLeaderStepDown {
			c.stepDown[ev.Mote] = ev.Label
		}
		c.endLeadership(ev.Mote, ev.Label, ev.At)

	case obs.EvLabelJoined:
		// Joining ends any leadership the mote held (the yield and
		// label-deletion paths emit their own end events first; this is
		// the defensive catch-all) and (re)starts membership.
		for label := range c.leaders {
			c.endLeadership(ev.Mote, label, ev.At)
		}
		c.members[ev.Mote] = &memberRec{label: ev.Label, since: ev.At}
		c.rearms[ev.Mote] = rearmRec{label: ev.Label, at: ev.At}
		c.lastReport[ev.Mote] = rearmRec{label: ev.Label, at: ev.At}

	case obs.EvWaitTimerArmed:
		// rememberLabel is only reached by motes in RoleNone: a silent
		// leave (stop-sensing, non-sensing timeout) has just ended any
		// membership.
		delete(c.members, ev.Mote)
		delete(c.rearms, ev.Mote)
		delete(c.lastReport, ev.Mote)

	case obs.EvHeartbeatSent:
		c.attrib(c.hbSends, ev.Mote).push(hbSend{label: ev.Label, origin: ev.Mote, seq: ev.Seq, at: ev.At})
		if rec := c.leaderOf(ev.Mote, ev.Label); rec != nil {
			rec.lastHB = ev.At
		}

	case obs.EvHeartbeatForwarded:
		c.attrib(c.hbSends, ev.Mote).push(hbSend{label: ev.Label, origin: ev.Peer, seq: ev.Seq, at: ev.At})

	case obs.EvReceiveTimerFired:
		c.checkTakeoverSilence(ev)

	case obs.EvCPUOverload:
		c.overloaded[ev.Mote] = true

	case obs.EvFrameSent:
		switch ev.Kind {
		case trace.KindRelinquish:
			if label, ok := c.stepDown[ev.Mote]; ok {
				c.attrib(c.relSends, ev.Mote).push(hbSend{label: label, origin: ev.Mote, at: ev.At})
			}
		case trace.KindReading:
			c.checkReport(ev)
		}

	case obs.EvFrameReceived:
		c.onReception(ev)

	case obs.EvDirectoryUpdated:
		if ev.Cause == "register" {
			c.checkDirectory(ev)
		}
	}

	c.checkDualLeaders(ev.At)
}

// Finish runs the end-of-run sweep (a dual-leader overlap or a stale
// active estimator can outlast the final event). at is the run's end
// time.
func (c *Checker) Finish(at time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if at > c.now {
		c.now = at
	}
	if c.passive != nil {
		c.sweepEstimateStale(c.now)
		return
	}
	c.checkDualLeaders(c.now)
}

// Violations returns the proven violations recorded so far.
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Count returns the total violation count (it keeps incrementing past
// the retention cap).
func (c *Checker) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Events returns how many events the checker has consumed (a smoke
// signal that it was actually attached).
func (c *Checker) Events() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

func (c *Checker) record(v Violation) {
	c.count++
	if len(c.violations) < c.cfg.MaxViolations {
		c.violations = append(c.violations, v)
	}
}

func (c *Checker) attrib(m map[int]*attrib, mote int) *attrib {
	a, ok := m[mote]
	if !ok {
		a = &attrib{}
		m[mote] = a
	}
	return a
}

func (c *Checker) leaderOf(mote int, label string) *leaderRec {
	if recs, ok := c.leaders[label]; ok {
		return recs[mote]
	}
	return nil
}

// startLeadership registers mote as a leader of label.
func (c *Checker) startLeadership(mote int, label string, at time.Duration, pos obsPos) {
	delete(c.members, mote)
	delete(c.rearms, mote)
	delete(c.lastReport, mote)
	recs, ok := c.leaders[label]
	if !ok {
		recs = make(map[int]*leaderRec)
		c.leaders[label] = recs
	}
	recs[mote] = &leaderRec{mote: mote, pos: pos, since: at, lastHB: at}
	c.everLed[label] = true
	if len(recs) >= 2 {
		c.multi[label] = true
	}
	c.refreshLeaderGone(label, at)
}

// endLeadership removes mote's leadership of label, if recorded.
func (c *Checker) endLeadership(mote int, label string, at time.Duration) {
	recs, ok := c.leaders[label]
	if !ok {
		return
	}
	if _, ok := recs[mote]; !ok {
		return
	}
	delete(recs, mote)
	if len(recs) < 2 {
		delete(c.multi, label)
	}
	if len(recs) == 0 {
		delete(c.leaders, label)
	}
	c.refreshLeaderGone(label, at)
	// A fresh overlap episode gets a fresh verdict.
	for key := range c.flagged {
		if keyLabel(key) == label {
			delete(c.flagged, key)
		}
	}
}

// refreshLeaderGone re-derives whether label currently has a live
// (non-failed) leader and stamps/clears the leaderless-since mark.
func (c *Checker) refreshLeaderGone(label string, at time.Duration) {
	if !c.everLed[label] {
		return
	}
	for _, rec := range c.leaders[label] {
		if !rec.failed {
			delete(c.leaderGone, label)
			return
		}
	}
	if _, ok := c.leaderGone[label]; !ok {
		c.leaderGone[label] = at
	}
}

func pairKey(label string, a, b int) string {
	if a > b {
		a, b = b, a
	}
	return fmt.Sprintf("%s|%d|%d", label, a, b)
}

func keyLabel(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '|' {
			for j := i - 1; j >= 0; j-- {
				if key[j] == '|' {
					return key[:j]
				}
			}
		}
	}
	return key
}

// checkDualLeaders scans labels with >= 2 leader records. A pair is a
// violation only when both motes are live, both have heartbeated the
// label recently (a crashed-and-restored "zombie" leader that never
// heartbeats cannot mislead anyone — members took over long ago), the
// pair is within direct radio range (so the weight-ordered yield rule
// provably applies), and the overlap has outlived the grace window.
func (c *Checker) checkDualLeaders(at time.Duration) {
	if len(c.multi) == 0 {
		return
	}
	activeWin := c.cfg.noticeWindow()
	for label := range c.multi {
		recs := c.leaders[label]
		var live []*leaderRec
		for _, rec := range recs {
			if rec.failed {
				continue
			}
			if at-rec.lastHB > activeWin {
				continue
			}
			live = append(live, rec)
		}
		if len(live) < 2 {
			continue
		}
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				key := pairKey(label, a.mote, b.mote)
				if c.flagged[key] {
					continue
				}
				overlap := a.since
				if b.since > overlap {
					overlap = b.since
				}
				severed := false
				for _, w := range c.cfg.Partitions {
					if (a.pos.x < w.X) == (b.pos.x < w.X) {
						continue // same side; this cut never isolates the pair
					}
					if at >= w.At && (w.Until <= w.At || at < w.Until) {
						severed = true
						break
					}
					if w.Until > w.At && at >= w.Until && w.Until > overlap {
						overlap = w.Until // grace restarts at heal
					}
				}
				if severed {
					continue
				}
				if at-overlap < c.cfg.DualLeaderGrace {
					continue
				}
				if c.cfg.CommRadius > 0 && !a.pos.within(b.pos, c.cfg.CommRadius) {
					continue
				}
				c.flagged[key] = true
				lo, hi := a.mote, b.mote
				if lo > hi {
					lo, hi = hi, lo
				}
				c.record(Violation{
					At: at, Invariant: DualLeader, Label: label, Mote: lo, Peer: hi, Run: c.run,
					Detail: fmt.Sprintf("motes %d and %d both led %q in radio range for %v (grace %v)",
						lo, hi, label, at-overlap, c.cfg.DualLeaderGrace),
				})
			}
		}
	}
}

// onReception records proven receive-timer re-arms: a heartbeat or
// relinquish reception attributed (unambiguously) to the receiving
// member's own label, passing the protocol's (label, origin, seq) dedup.
func (c *Checker) onReception(ev obs.Event) {
	if c.failedNow[ev.Mote] {
		return // the mote drops the frame before dispatch
	}
	mem, ok := c.members[ev.Mote]
	if !ok {
		return
	}
	switch ev.Kind {
	case trace.KindHeartbeat:
		send, ok := c.hbSends[ev.Peer].lookup(ev.At)
		if !ok || send.label != mem.label {
			return
		}
		// Mirror the protocol's flood dedup: only a strictly newer
		// sequence for (label, origin) re-arms the receive timer, so a
		// duplicated or forwarded copy of an already-seen heartbeat never
		// shrinks the measured silence.
		key := send.label + "/" + fmt.Sprint(send.origin)
		seen := c.seen[ev.Mote]
		if seen == nil {
			seen = make(map[string]uint64)
			c.seen[ev.Mote] = seen
		}
		if send.seq <= seen[key] {
			return
		}
		seen[key] = send.seq
		c.rearms[ev.Mote] = rearmRec{label: mem.label, at: ev.At}
	case trace.KindRelinquish:
		send, ok := c.relSends[ev.Peer].lookup(ev.At)
		if !ok || send.label != mem.label {
			return
		}
		// A same-label relinquish always re-arms the member's timer.
		c.rearms[ev.Mote] = rearmRec{label: mem.label, at: ev.At}
	}
}

// checkTakeoverSilence (I2): the receive timer is never shorter than
// ReceiveFactor x heartbeat, so a firing within that window of a proven
// re-arm is a bug. Re-arm records are lower bounds on the true re-arm
// time (reception precedes dispatch), so the measured silence is an
// upper bound on the true silence and the check cannot false-positive.
func (c *Checker) checkTakeoverSilence(ev obs.Event) {
	if c.overloaded[ev.Mote] {
		// CPU-overloaded motes drop frames after the radio delivered
		// them; re-arm records are then unreliable.
		return
	}
	r, ok := c.rearms[ev.Mote]
	if !ok || r.label != ev.Label {
		return
	}
	if fault, ok := c.lastFault[ev.Mote]; ok && fault >= r.at {
		// A crash window between the re-arm and the firing may have
		// swallowed the dispatch.
		return
	}
	silence := ev.At - r.at
	if silence < c.cfg.minTakeoverSilence() {
		c.record(Violation{
			At: ev.At, Invariant: TakeoverSilence, Label: ev.Label, Mote: ev.Mote, Run: ev.Run,
			Detail: fmt.Sprintf("receive timer fired after %v of label silence (minimum %v)",
				silence, c.cfg.minTakeoverSilence()),
		})
	}
}

// checkReport handles a member report transmission: I3 (reports after
// the label lost its last leader) and I5 (cadence).
func (c *Checker) checkReport(ev obs.Event) {
	mem, ok := c.members[ev.Mote]
	if !ok {
		return
	}
	// I3: the label has been leaderless long past every member's notice
	// window, yet this member still reports. Motes that crashed since the
	// teardown are exempt: a restored "zombie" member has no receive
	// timer until the next heartbeat, which a leaderless label never
	// sends — a protocol wart, not a checker target.
	if gone, ok := c.leaderGone[mem.label]; ok {
		// A mote may legally join a leaderless label *after* the teardown:
		// the non-member wait timer remembers a nearby label for
		// WaitFactor x heartbeat (4.2x, Section 6.2) after its last heard
		// heartbeat, which outlives the leader's departure. Such a joiner's
		// notice clock starts at its own join — its receive timer, armed at
		// the join, still bounds how long it can keep reporting.
		ref := gone
		if mem.since > ref {
			ref = mem.since
		}
		if ev.At-ref > c.cfg.TeardownGrace {
			if fault, faulted := c.lastFault[ev.Mote]; !faulted || fault < ref {
				c.record(Violation{
					At: ev.At, Invariant: ReportAfterTeardown, Label: mem.label, Mote: ev.Mote, Run: ev.Run,
					Detail: fmt.Sprintf("member report %v after label %q lost its last leader (grace %v)",
						ev.At-ref, mem.label, c.cfg.TeardownGrace),
				})
			}
		}
	}
	// I5: gap since the previous report (or the join) of a continuously
	// stable, never-faulted member must not exceed Pe + slack.
	if c.cfg.ReportPeriod > 0 {
		if last, ok := c.lastReport[ev.Mote]; ok && last.label == mem.label && last.at >= mem.since {
			if fault, faulted := c.lastFault[ev.Mote]; !faulted || fault < last.at {
				gap := ev.At - last.at
				if bound := c.cfg.ReportPeriod + c.cfg.CadenceSlack; gap > bound {
					c.record(Violation{
						At: ev.At, Invariant: ReportCadence, Label: mem.label, Mote: ev.Mote, Run: ev.Run,
						Detail: fmt.Sprintf("report gap %v exceeds Pe+slack %v", gap, bound),
					})
				}
			}
		}
	}
	c.lastReport[ev.Mote] = rearmRec{label: mem.label, at: ev.At}
}

// checkDirectory (I4): a registration for a label that has been
// leaderless for longer than the grace (or that no mote ever led, once
// leadership events have been observed at all) is stale state the
// directory should never accept.
func (c *Checker) checkDirectory(ev obs.Event) {
	if len(c.everLed) == 0 {
		return // no group activity observed; nothing to correlate against
	}
	if !c.everLed[ev.Label] {
		c.record(Violation{
			At: ev.At, Invariant: DirectoryStale, Label: ev.Label, Mote: ev.Mote, Peer: ev.Peer, Run: ev.Run,
			Detail: fmt.Sprintf("directory registration for label %q no mote ever led", ev.Label),
		})
		return
	}
	if gone, ok := c.leaderGone[ev.Label]; ok && ev.At-gone > c.cfg.DirectoryGrace {
		c.record(Violation{
			At: ev.At, Invariant: DirectoryStale, Label: ev.Label, Mote: ev.Mote, Peer: ev.Peer, Run: ev.Run,
			Detail: fmt.Sprintf("directory registration %v after label %q lost its last leader (grace %v)",
				ev.At-gone, ev.Label, c.cfg.DirectoryGrace),
		})
	}
}
