package invariant

import (
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/obs"
	"envirotrack/internal/trace"
)

// Default-config timing used throughout: heartbeat 500ms, so the minimum
// takeover silence is 1.05s, the liveness/notice window is 1.155s, the
// dual-leader grace is 3s, and the teardown grace is 2.155s.

const hb = 500 * time.Millisecond

func at(sec float64) time.Duration { return time.Duration(sec * float64(time.Second)) }

// lead emits a leadership start for mote at position (x, 0).
func lead(c *Checker, t time.Duration, mote int, label string, x float64) {
	c.Emit(obs.Event{At: t, Type: obs.EvLabelCreated, Mote: mote, Label: label, Pos: geom.Pt(x, 0)})
}

// beat emits a heartbeat transmission keeping a leader "live".
func beat(c *Checker, t time.Duration, mote int, label string, seq uint64) {
	c.Emit(obs.Event{At: t, Type: obs.EvHeartbeatSent, Mote: mote, Label: label, Seq: seq})
}

// beatBoth keeps two leaders alive from t0 to t1 on the heartbeat period.
func beatBoth(c *Checker, t0, t1 time.Duration, a, b int, label string) {
	seq := uint64(1)
	for t := t0; t <= t1; t += hb {
		beat(c, t, a, label, seq)
		beat(c, t, b, label, seq)
		seq++
	}
}

func violationsOf(c *Checker, invariant string) []Violation {
	var out []Violation
	for _, v := range c.Violations() {
		if v.Invariant == invariant {
			out = append(out, v)
		}
	}
	return out
}

func TestDualLeaderFiresAfterGrace(t *testing.T) {
	c := New(Config{})
	lead(c, at(1), 1, "L", 0)
	lead(c, at(1), 2, "L", 1)
	beatBoth(c, at(1.5), at(4.0), 1, 2, "L")
	got := violationsOf(c, DualLeader)
	if len(got) != 1 {
		t.Fatalf("dual-leader violations = %d (%v), want 1", len(got), got)
	}
	v := got[0]
	if v.Label != "L" || v.Mote != 1 || v.Peer != 2 {
		t.Errorf("violation identifies %q motes %d/%d, want L 1/2", v.Label, v.Mote, v.Peer)
	}
	// The pair is flagged once, not on every subsequent event.
	beatBoth(c, at(4.5), at(6.0), 1, 2, "L")
	if n := len(violationsOf(c, DualLeader)); n != 1 {
		t.Errorf("pair re-flagged: %d violations", n)
	}
}

func TestDualLeaderTransientOverlapExempt(t *testing.T) {
	c := New(Config{})
	lead(c, at(1), 1, "L", 0)
	lead(c, at(1), 2, "L", 1)
	beatBoth(c, at(1.5), at(3.5), 1, 2, "L")
	// Mote 2 yields before the 3s grace elapses.
	c.Emit(obs.Event{At: at(3.8), Type: obs.EvLabelYield, Mote: 2, Label: "L"})
	c.Finish(at(10))
	if got := violationsOf(c, DualLeader); len(got) != 0 {
		t.Errorf("transient overlap flagged: %v", got)
	}
}

func TestDualLeaderOutOfRangeExempt(t *testing.T) {
	c := New(Config{CommRadius: 2})
	lead(c, at(1), 1, "L", 0)
	lead(c, at(1), 2, "L", 5) // 5 grid units apart, radius 2
	beatBoth(c, at(1.5), at(6.0), 1, 2, "L")
	c.Finish(at(6))
	if got := violationsOf(c, DualLeader); len(got) != 0 {
		t.Errorf("out-of-range pair flagged: %v", got)
	}
}

func TestDualLeaderZombieExempt(t *testing.T) {
	c := New(Config{})
	lead(c, at(1), 1, "L", 0)
	lead(c, at(1), 2, "L", 1)
	// Only mote 2 keeps heartbeating; mote 1 is a silent zombie whose
	// members noticed the silence long ago.
	for seq, tm := uint64(1), at(1.5); tm <= at(6); tm += hb {
		beat(c, tm, 2, "L", seq)
		seq++
	}
	c.Finish(at(6))
	if got := violationsOf(c, DualLeader); len(got) != 0 {
		t.Errorf("zombie leader pair flagged: %v", got)
	}
}

func TestDualLeaderFailedLeaderExempt(t *testing.T) {
	c := New(Config{})
	lead(c, at(1), 1, "L", 0)
	lead(c, at(1), 2, "L", 1)
	c.Emit(obs.Event{At: at(1.2), Type: obs.EvMoteFailed, Mote: 1})
	beatBoth(c, at(1.5), at(6.0), 1, 2, "L")
	c.Finish(at(6))
	if got := violationsOf(c, DualLeader); len(got) != 0 {
		t.Errorf("crashed leader pair flagged: %v", got)
	}
}

func TestDualLeaderPartitionExemptAndHealRestartsGrace(t *testing.T) {
	c := New(Config{Partitions: []PartitionWindow{{X: 3, At: 0, Until: at(10)}}})
	lead(c, at(1), 1, "L", 0)
	lead(c, at(1), 2, "L", 5)
	// Severed split-brain: no violation however long it persists.
	beatBoth(c, at(1.5), at(9.5), 1, 2, "L")
	if got := violationsOf(c, DualLeader); len(got) != 0 {
		t.Fatalf("split-brain during partition flagged: %v", got)
	}
	// After the heal the grace clock restarts at 10s: still clean at
	// 12.9s, a violation once the overlap reaches 3s.
	beatBoth(c, at(10), at(12.9), 1, 2, "L")
	if got := violationsOf(c, DualLeader); len(got) != 0 {
		t.Fatalf("flagged before post-heal grace elapsed: %v", got)
	}
	beatBoth(c, at(13), at(13.5), 1, 2, "L")
	if got := violationsOf(c, DualLeader); len(got) != 1 {
		t.Errorf("post-heal persistent dual leadership: %d violations, want 1", len(got))
	}
}

func TestDualLeaderSameSideOfPartitionStillFlagged(t *testing.T) {
	c := New(Config{Partitions: []PartitionWindow{{X: 3, At: 0, Until: at(20)}}})
	lead(c, at(1), 1, "L", 4)
	lead(c, at(1), 2, "L", 5) // both east of the cut: partition irrelevant
	beatBoth(c, at(1.5), at(6.0), 1, 2, "L")
	if got := violationsOf(c, DualLeader); len(got) != 1 {
		t.Errorf("same-side dual leadership under partition: %d violations, want 1", len(got))
	}
}

// join makes mote a member of label under the given leader, with a
// proven heartbeat re-arm at rearm (the leader's send precedes it by 1ms).
func join(c *Checker, tm time.Duration, mote, leader int, label string) {
	c.Emit(obs.Event{At: tm, Type: obs.EvLabelJoined, Mote: mote, Label: label})
}

func rearm(c *Checker, tm time.Duration, mote, leader int, label string, seq uint64) {
	beat(c, tm-time.Millisecond, leader, label, seq)
	c.Emit(obs.Event{At: tm, Type: obs.EvFrameReceived, Mote: mote, Peer: leader,
		Kind: trace.KindHeartbeat})
}

func TestTakeoverSilenceViolation(t *testing.T) {
	c := New(Config{})
	lead(c, at(0.5), 1, "L", 0)
	join(c, at(1), 3, 1, "L")
	rearm(c, at(2), 3, 1, "L", 1)
	// Timer fires 0.5s after a proven re-arm: impossibly early (min 1.05s).
	c.Emit(obs.Event{At: at(2.5), Type: obs.EvReceiveTimerFired, Mote: 3, Label: "L"})
	if got := violationsOf(c, TakeoverSilence); len(got) != 1 {
		t.Fatalf("takeover-silence violations = %d (%v), want 1", len(got), got)
	}
}

func TestTakeoverSilenceLegitimateFiring(t *testing.T) {
	c := New(Config{})
	lead(c, at(0.5), 1, "L", 0)
	join(c, at(1), 3, 1, "L")
	rearm(c, at(2), 3, 1, "L", 1)
	// 1.2s of silence exceeds the 1.05s minimum: legitimate.
	c.Emit(obs.Event{At: at(3.2), Type: obs.EvReceiveTimerFired, Mote: 3, Label: "L"})
	if got := violationsOf(c, TakeoverSilence); len(got) != 0 {
		t.Errorf("legitimate takeover flagged: %v", got)
	}
}

func TestTakeoverSilenceDuplicateCopyDoesNotRearm(t *testing.T) {
	c := New(Config{})
	lead(c, at(0.5), 1, "L", 0)
	join(c, at(1), 3, 1, "L")
	rearm(c, at(2), 3, 1, "L", 1)
	// A duplicated copy of the same seq=1 heartbeat arrives later; the
	// protocol dedups it, so it must not shrink the measured silence.
	c.Emit(obs.Event{At: at(2.5), Type: obs.EvFrameReceived, Mote: 3, Peer: 1,
		Kind: trace.KindHeartbeat})
	c.Emit(obs.Event{At: at(3.2), Type: obs.EvReceiveTimerFired, Mote: 3, Label: "L"})
	if got := violationsOf(c, TakeoverSilence); len(got) != 0 {
		t.Errorf("dup heartbeat copy shrank measured silence: %v", got)
	}
	// Control: a genuinely fresh seq=2 re-arm at 2.5s makes the same 3.2s
	// firing an early fire.
	c2 := New(Config{})
	lead(c2, at(0.5), 1, "L", 0)
	join(c2, at(1), 3, 1, "L")
	rearm(c2, at(2), 3, 1, "L", 1)
	rearm(c2, at(2.5), 3, 1, "L", 2)
	c2.Emit(obs.Event{At: at(3.2), Type: obs.EvReceiveTimerFired, Mote: 3, Label: "L"})
	if got := violationsOf(c2, TakeoverSilence); len(got) != 1 {
		t.Errorf("fresh-seq re-arm not honored: %d violations, want 1", len(got))
	}
}

func TestTakeoverSilenceFaultWindowExempt(t *testing.T) {
	c := New(Config{})
	lead(c, at(0.5), 1, "L", 0)
	join(c, at(1), 3, 1, "L")
	rearm(c, at(2), 3, 1, "L", 1)
	// A crash-restore between re-arm and firing may have swallowed the
	// dispatch; the early firing is unprovable.
	c.Emit(obs.Event{At: at(2.1), Type: obs.EvMoteFailed, Mote: 3})
	c.Emit(obs.Event{At: at(2.2), Type: obs.EvMoteRestored, Mote: 3})
	c.Emit(obs.Event{At: at(2.5), Type: obs.EvReceiveTimerFired, Mote: 3, Label: "L"})
	if got := violationsOf(c, TakeoverSilence); len(got) != 0 {
		t.Errorf("faulted mote's early fire flagged: %v", got)
	}
}

func TestReportAfterTeardown(t *testing.T) {
	c := New(Config{})
	lead(c, at(1), 1, "L", 0)
	join(c, at(1.2), 3, 1, "L")
	c.Emit(obs.Event{At: at(2), Type: obs.EvLabelDeleted, Mote: 1, Label: "L"})
	// 1.5s after teardown: within the 2.155s notice grace.
	c.Emit(obs.Event{At: at(3.5), Type: obs.EvFrameSent, Mote: 3, Kind: trace.KindReading})
	if got := violationsOf(c, ReportAfterTeardown); len(got) != 0 {
		t.Fatalf("report within teardown grace flagged: %v", got)
	}
	// 3s after teardown: the member's receive timer must long since have
	// fired and ended the membership.
	c.Emit(obs.Event{At: at(5), Type: obs.EvFrameSent, Mote: 3, Kind: trace.KindReading})
	if got := violationsOf(c, ReportAfterTeardown); len(got) != 1 {
		t.Errorf("late report after teardown: %d violations, want 1", len(got))
	}
}

func TestReportAfterTeardownRestoredMemberExempt(t *testing.T) {
	c := New(Config{})
	lead(c, at(1), 1, "L", 0)
	join(c, at(1.2), 3, 1, "L")
	c.Emit(obs.Event{At: at(2), Type: obs.EvLabelDeleted, Mote: 1, Label: "L"})
	// The member crash-restores after the teardown: its receive timer is
	// dead and its ticker resumes — a known protocol wart, not a finding.
	c.Emit(obs.Event{At: at(2.5), Type: obs.EvMoteFailed, Mote: 3})
	c.Emit(obs.Event{At: at(3), Type: obs.EvMoteRestored, Mote: 3})
	c.Emit(obs.Event{At: at(6), Type: obs.EvFrameSent, Mote: 3, Kind: trace.KindReading})
	if got := violationsOf(c, ReportAfterTeardown); len(got) != 0 {
		t.Errorf("restored zombie member flagged: %v", got)
	}
}

func TestReportCadence(t *testing.T) {
	c := New(Config{ReportPeriod: 900 * time.Millisecond}) // bound = 900ms + 950ms
	lead(c, at(0.5), 1, "L", 0)
	join(c, at(1), 3, 1, "L")
	c.Emit(obs.Event{At: at(2), Type: obs.EvFrameSent, Mote: 3, Kind: trace.KindReading})
	c.Emit(obs.Event{At: at(2.9), Type: obs.EvFrameSent, Mote: 3, Kind: trace.KindReading})
	if got := violationsOf(c, ReportCadence); len(got) != 0 {
		t.Fatalf("on-cadence reports flagged: %v", got)
	}
	// 2.5s gap exceeds Pe + slack = 1.85s.
	c.Emit(obs.Event{At: at(5.4), Type: obs.EvFrameSent, Mote: 3, Kind: trace.KindReading})
	if got := violationsOf(c, ReportCadence); len(got) != 1 {
		t.Errorf("stalled cadence: %d violations, want 1", len(got))
	}
}

func TestReportCadenceDisabledWithoutPeriod(t *testing.T) {
	c := New(Config{})
	lead(c, at(0.5), 1, "L", 0)
	join(c, at(1), 3, 1, "L")
	c.Emit(obs.Event{At: at(2), Type: obs.EvFrameSent, Mote: 3, Kind: trace.KindReading})
	c.Emit(obs.Event{At: at(20), Type: obs.EvFrameSent, Mote: 3, Kind: trace.KindReading})
	if got := violationsOf(c, ReportCadence); len(got) != 0 {
		t.Errorf("cadence flagged with ReportPeriod=0: %v", got)
	}
}

func TestDirectoryStale(t *testing.T) {
	c := New(Config{})
	lead(c, at(1), 1, "L", 0)
	c.Emit(obs.Event{At: at(2), Type: obs.EvDirectoryUpdated, Label: "L", Cause: "register"})
	if got := violationsOf(c, DirectoryStale); len(got) != 0 {
		t.Fatalf("live-label registration flagged: %v", got)
	}
	// A label no mote ever led.
	c.Emit(obs.Event{At: at(2.5), Type: obs.EvDirectoryUpdated, Label: "phantom", Cause: "register"})
	if got := violationsOf(c, DirectoryStale); len(got) != 1 {
		t.Fatalf("phantom-label registration: %d violations, want 1", len(got))
	}
	// A registration long after the label lost its last leader.
	c.Emit(obs.Event{At: at(3), Type: obs.EvLabelDeleted, Mote: 1, Label: "L"})
	c.Emit(obs.Event{At: at(5), Type: obs.EvDirectoryUpdated, Label: "L", Cause: "register"})
	if got := violationsOf(c, DirectoryStale); len(got) != 1 {
		t.Fatalf("registration within directory grace flagged: %v", violationsOf(c, DirectoryStale))
	}
	c.Emit(obs.Event{At: at(7), Type: obs.EvDirectoryUpdated, Label: "L", Cause: "register"})
	if got := violationsOf(c, DirectoryStale); len(got) != 2 {
		t.Errorf("stale registration past grace: %d violations, want 2", len(got))
	}
}

func TestCheckerEmptyRun(t *testing.T) {
	c := New(Config{})
	c.Finish(at(60))
	if n := c.Count(); n != 0 {
		t.Errorf("empty run produced %d violations", n)
	}
	if c.Events() != 0 {
		t.Errorf("empty run counted events")
	}
}

func TestViolationRetentionCap(t *testing.T) {
	c := New(Config{MaxViolations: 2})
	lead(c, at(1), 1, "L", 0)
	for i := 0; i < 5; i++ {
		c.Emit(obs.Event{At: at(2), Type: obs.EvDirectoryUpdated, Label: "phantom", Cause: "register"})
	}
	if got := len(c.Violations()); got != 2 {
		t.Errorf("retained %d violations, want cap 2", got)
	}
	if c.Count() != 5 {
		t.Errorf("Count() = %d, want 5", c.Count())
	}
}
