package invariant

// Passive-traces backend rules. The backend has no leaders and no
// heartbeats, so none of I1–I5 apply; what its event stream can prove
// instead:
//
//	P1 trace-monotonic     A mote's deposited trace sequence numbers
//	                       strictly increase (deposits draw from the
//	                       mote's correlation counter, so a repeated or
//	                       regressed sequence means a duplicated or
//	                       replayed deposit).
//	P2 report-without-trace  Context-state output needs a supporting
//	                       trace: an estimator activation (takeover)
//	                       requires a fresh own deposit within the
//	                       candidacy window, and a pursuer report
//	                       (Ctx.SendNode) requires trace activity at the
//	                       sender within the staleness bound.
//	P3 estimate-stale      An active estimator whose whole trace field
//	                       has aged past the staleness bound must have
//	                       stepped down: once the newest deposit anywhere
//	                       is older than TraceStaleness (+ slack), no
//	                       mote may still be active.
//
// All rules stay sound on nominal runs via the same discipline as the
// leader set: the stream must prove the breach, faulted motes are
// exempt through their fault window, and P3 is deduplicated per
// activation episode.

import (
	"fmt"
	"time"

	"envirotrack/internal/obs"
	"envirotrack/internal/trace"
)

// passiveState accumulates what the passive rules need from the stream.
type passiveState struct {
	traceSeq map[int]uint64        // mote -> highest deposited trace seq
	lastOwn  map[int]time.Duration // mote -> last own trace deposit
	lastAct  map[int]time.Duration // mote -> last trace activity (deposit or integration)

	lastDeposit time.Duration // newest trace deposit anywhere
	anyDeposit  bool

	active map[int]*estimatorRec // mote -> current active-estimator episode
}

// estimatorRec is one mote's active-estimator episode.
type estimatorRec struct {
	label   string
	since   time.Duration
	flagged bool // estimate-stale already reported for this episode
}

func newPassiveState() *passiveState {
	return &passiveState{
		traceSeq: make(map[int]uint64),
		lastOwn:  make(map[int]time.Duration),
		lastAct:  make(map[int]time.Duration),
		active:   make(map[int]*estimatorRec),
	}
}

// emitPassive applies the passive-traces rules P1–P3.
func (c *Checker) emitPassive(ev obs.Event) {
	p := c.passive
	switch ev.Type {
	case obs.EvMoteFailed:
		c.failedNow[ev.Mote] = true
		c.lastFault[ev.Mote] = ev.At

	case obs.EvMoteRestored:
		c.failedNow[ev.Mote] = false
		c.lastFault[ev.Mote] = ev.At

	case obs.EvReportSent:
		switch ev.Kind {
		case trace.KindTrace:
			c.checkTraceDeposit(ev)
		case trace.KindReport:
			c.checkPassiveReport(ev)
		}

	case obs.EvRouteDelivered:
		// A delivered gossip span means the receiver integrated at least
		// one fresh trace record.
		if ev.Kind == trace.KindTrace && !c.failedNow[ev.Mote] {
			p.lastAct[ev.Mote] = ev.At
		}

	case obs.EvLabelCreated:
		// The minting activation: its first deposit follows at the same
		// instant, so no freshness precondition exists yet.
		p.active[ev.Mote] = &estimatorRec{label: ev.Label, since: ev.At}

	case obs.EvLabelTakeover:
		c.checkTakeoverFreshness(ev)
		p.active[ev.Mote] = &estimatorRec{label: ev.Label, since: ev.At}

	case obs.EvLeaderStepDown:
		delete(p.active, ev.Mote)
	}

	c.sweepEstimateStale(ev.At)
}

// checkTraceDeposit (P1): a mote's own deposits carry strictly
// increasing sequence numbers. Also records the deposit for P2/P3.
func (c *Checker) checkTraceDeposit(ev obs.Event) {
	p := c.passive
	if last, ok := p.traceSeq[ev.Mote]; ok && ev.Seq <= last {
		c.record(Violation{
			At: ev.At, Invariant: TraceMonotonic, Label: ev.Label, Mote: ev.Mote, Run: ev.Run,
			Detail: fmt.Sprintf("trace deposit seq %d not above previous %d", ev.Seq, last),
		})
	} else {
		p.traceSeq[ev.Mote] = ev.Seq
	}
	p.lastOwn[ev.Mote] = ev.At
	p.lastAct[ev.Mote] = ev.At
	if !p.anyDeposit || ev.At > p.lastDeposit {
		p.anyDeposit = true
		p.lastDeposit = ev.At
	}
}

// checkTakeoverFreshness (P2, activation half): the local election rule
// only activates a mote whose own trace is younger than the candidacy
// window (ReceiveFactor x heartbeat — the same formula as the leader
// backend's minimum takeover silence), so a takeover without a
// sufficiently fresh own deposit is a bug. Deposit and takeover events
// share the simulation clock, so the bound needs no slack.
func (c *Checker) checkTakeoverFreshness(ev obs.Event) {
	p := c.passive
	own, ok := p.lastOwn[ev.Mote]
	if ok {
		if fault, faulted := c.lastFault[ev.Mote]; faulted && fault >= own {
			return // a fault window since the deposit blurs attribution
		}
	}
	window := c.cfg.minTakeoverSilence()
	if !ok || ev.At-own > window {
		age := "no own deposit observed"
		if ok {
			age = fmt.Sprintf("own deposit %v old", ev.At-own)
		}
		c.record(Violation{
			At: ev.At, Invariant: ReportWithoutTrace, Label: ev.Label, Mote: ev.Mote, Run: ev.Run,
			Detail: fmt.Sprintf("estimator takeover without a fresh own trace: %s (candidacy window %v)", age, window),
		})
	}
}

// checkPassiveReport (P2, report half): a pursuer report originates from
// the active estimator's context objects, which exist only while the
// trace field supports an estimate — so the sender must have trace
// activity within the staleness bound.
func (c *Checker) checkPassiveReport(ev obs.Event) {
	p := c.passive
	if c.failedNow[ev.Mote] {
		return
	}
	last, ok := p.lastAct[ev.Mote]
	if !ok {
		c.record(Violation{
			At: ev.At, Invariant: ReportWithoutTrace, Label: ev.Label, Mote: ev.Mote, Run: ev.Run,
			Detail: "report sent with no trace activity ever observed at the sender",
		})
		return
	}
	if fault, faulted := c.lastFault[ev.Mote]; faulted && fault >= last {
		return // the crash window may have swallowed intervening activity
	}
	bound := c.cfg.TraceStaleness + c.cfg.TraceSlack
	if ev.At-last > bound {
		c.record(Violation{
			At: ev.At, Invariant: ReportWithoutTrace, Label: ev.Label, Mote: ev.Mote, Run: ev.Run,
			Detail: fmt.Sprintf("report sent %v after the sender's last trace activity (bound %v)", ev.At-last, bound),
		})
	}
}

// sweepEstimateStale (P3): once the newest deposit anywhere is older
// than the staleness bound, every still-active estimator's own view is
// at least as old, so its stale timer must have stepped it down. The
// episode start caps the measured age so an activation during a quiet
// stream is not blamed for staleness it never saw.
func (c *Checker) sweepEstimateStale(at time.Duration) {
	p := c.passive
	if !p.anyDeposit || len(p.active) == 0 {
		return
	}
	bound := c.cfg.TraceStaleness + c.cfg.TraceSlack
	if at-p.lastDeposit <= bound {
		return
	}
	for mote, rec := range p.active {
		if rec.flagged || c.failedNow[mote] {
			continue
		}
		if fault, faulted := c.lastFault[mote]; faulted && fault >= p.lastDeposit {
			continue
		}
		start := p.lastDeposit
		if rec.since > start {
			start = rec.since
		}
		if at-start <= bound {
			continue
		}
		rec.flagged = true
		c.record(Violation{
			At: at, Invariant: EstimateStale, Label: rec.label, Mote: mote, Run: c.run,
			Detail: fmt.Sprintf("estimator still active %v after the last trace deposit (staleness bound %v)",
				at-start, bound),
		})
	}
}
