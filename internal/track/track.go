// Package track defines the pluggable tracking-backend seam: the protocol
// interface the per-mote context runtime (internal/core) drives, plus a
// registry mapping backend names to constructors. A backend owns the
// distributed part of entity tracking — discovering the tracked entity,
// maintaining a context label over the sensing group, and deciding which
// mote runs the context's objects — while the core runtime owns the
// middleware part (aggregate windows, object methods, directory
// registration), which is backend-agnostic.
//
// Backend A ("leader") wraps the EnviroTrack group-management protocol of
// internal/group (leader election, heartbeats, receive/wait timers).
// Backend B ("passive", internal/track/passive) implements the
// passive-traces algorithm of Marculescu et al.: trace deposition, gossip,
// and interpolation, with no leader and no heartbeats.
package track

import (
	"fmt"
	"sort"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/mote"
	"envirotrack/internal/radio"
	"envirotrack/internal/trace"
)

// Canonical backend names.
const (
	// BackendLeader is the EnviroTrack group-management protocol
	// (Section 5.2 of the paper): leader election over the sensing group.
	BackendLeader = "leader"
	// BackendPassive is the passive-traces protocol: trace deposition and
	// gossip with a local estimator, no leader election.
	BackendPassive = "passive"
)

// Callbacks connect a tracking backend to the context runtime above it.
// Any field may be nil. The contract mirrors group.Callbacks but uses
// activation terminology: a backend "activates" the mote it selects to run
// the context's objects (the group leader, the passive estimator) and must
// pair every OnActivate with an eventual OnDeactivate for the same label.
// After Stop returns, a backend must invoke no further callbacks.
type Callbacks struct {
	// ReportPayload supplies the mote's current measurements when the
	// backend ships readings to the active mote.
	ReportPayload func() any
	// OnReport delivers a remote mote's readings to the active mote's
	// aggregation logic.
	OnReport func(from radio.NodeID, payload any)
	// OnActivate fires when the backend selects this mote to run the
	// context's objects for label, with the label's persistent state
	// (nil for a fresh label).
	OnActivate func(label group.Label, state []byte)
	// OnDeactivate fires when this mote stops running the context's
	// objects for label, for any reason.
	OnDeactivate func(label group.Label)
	// OnLabelDeleted fires when this mote deletes its own label as
	// spurious (merge/suppression); the middleware withdraws directory
	// registrations.
	OnLabelDeleted func(label group.Label)
}

// Deps is everything a backend constructor receives. Group carries the
// per-context protocol timing; non-leader backends derive their own
// periods from it (heartbeat period -> deposit period, etc.) so scenario
// knobs tune every backend consistently.
type Deps struct {
	Mote      *mote.Mote
	CtxType   string
	Group     group.Config
	Callbacks Callbacks
	Ledger    *trace.Ledger
}

// TraceSample is the payload a backend hands to Callbacks.OnReport when it
// integrates a remote position observation that is not a full readings
// report (the passive backend's gossiped traces). The core runtime folds
// it into position-input aggregate variables.
type TraceSample struct {
	MoteID radio.NodeID
	Pos    geom.Point
	At     time.Duration
}

// Backend is the tracking-protocol interface the context runtime drives.
// Inputs arrive as sensing transitions (SetSensing, called on every scan),
// received frames (the backend registers its own mote frame handler), and
// virtual-clock timers the backend arms itself. Outputs are the Callbacks
// plus the obs/ledger events the backend emits; report-lifecycle events
// must carry radio.Corr correlation headers so spans, ettrace, and the
// invariant checker work against any backend.
type Backend interface {
	// SetSensing informs the backend of the mote's current sensee()
	// evaluation; called on every sensing scan, no-change calls are cheap.
	SetSensing(sensing bool)
	// Sensing returns the last value supplied to SetSensing.
	Sensing() bool
	// Label returns the context label the mote currently participates in
	// (empty when none).
	Label() group.Label
	// Participating reports whether the mote currently takes part in the
	// protocol for some label (member or leader, depositor or estimator).
	Participating() bool
	// SetState updates the label's persistent application state; only the
	// active mote's calls need take effect.
	SetState(state []byte)
	// State returns the label's persistent state as known by this mote.
	State() []byte
	// Stop tears down all timers and silences the backend (end-of-run
	// cleanup); no callbacks may fire after it returns.
	Stop()
}

// Factory constructs a backend instance on one mote.
type Factory func(Deps) Backend

var registry = map[string]Factory{
	BackendLeader: newLeader,
}

// Register installs a backend constructor under name. Backends register
// from init(); duplicate names panic to surface wiring mistakes early.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("track: backend %q registered twice", name))
	}
	registry[name] = f
}

// New constructs the named backend ("" means the default leader backend).
func New(name string, d Deps) (Backend, error) {
	if name == "" {
		name = BackendLeader
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("track: unknown backend %q (have %v)", name, Names())
	}
	return f(d), nil
}

// Known reports whether name is a registered backend ("" counts: it is the
// default).
func Known(name string) bool {
	if name == "" {
		return true
	}
	_, ok := registry[name]
	return ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
