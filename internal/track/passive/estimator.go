package passive

import (
	"time"

	"envirotrack/internal/geom"
)

// Point is one timestamped position observation (a deposited trace).
type Point struct {
	At  time.Duration
	Pos geom.Point
}

// Estimator interpolates the target position from the trace field: a
// least-squares linear fit of position against time over the live trace
// window, evaluated at the query instant. It is incremental — Add and
// Evict adjust running sums instead of refitting from scratch — so the
// per-gossip cost is O(1) and eviction is O(evicted). The brute-force
// reference refit lives in the property test, which bounds the
// accumulated floating-point drift of the incremental sums.
//
// Times enter the sums relative to an epoch rebased whenever the live
// set empties — and, on long uninterrupted runs, whenever the oldest
// live point drifts more than a few windows past it. Raw simulation
// timestamps grow without bound, and the fit denominator n*st2 - st*st
// cancels catastrophically once t is large against the trace window;
// epoch-relative times keep it conditioned, and the periodic rebase
// (an O(n) resummation, n <= maxPoints) also discards whatever drift
// the incremental add/remove arithmetic accumulated since the last one.
type Estimator struct {
	window time.Duration
	epoch  time.Duration // time origin of the running sums
	pts    []Point       // insertion order; eviction scans the whole slice

	// Running sums over live points, times in seconds since epoch.
	n                         int
	st, st2, sx, sy, stx, sty float64
}

// maxPoints bounds the live set so a dense neighborhood cannot grow the
// estimator without limit; the oldest point is evicted beyond it.
const maxPoints = 256

// NewEstimator builds an estimator whose live window is the given trace
// staleness horizon.
func NewEstimator(window time.Duration) *Estimator {
	return &Estimator{window: window}
}

// Len returns the number of live points.
func (e *Estimator) Len() int { return e.n }

// Newest returns the timestamp of the most recent live point (zero, false
// when empty).
func (e *Estimator) Newest() (time.Duration, bool) {
	if e.n == 0 {
		return 0, false
	}
	newest := e.pts[0].At
	for _, p := range e.pts[1:] {
		if p.At > newest {
			newest = p.At
		}
	}
	return newest, true
}

// Add integrates one trace point.
func (e *Estimator) Add(p Point) {
	if e.n >= maxPoints {
		oldest := 0
		for i, q := range e.pts {
			if q.At < e.pts[oldest].At {
				oldest = i
			}
		}
		e.remove(oldest)
	}
	if e.n == 0 {
		e.epoch = p.At
	}
	e.pts = append(e.pts, p)
	t := (p.At - e.epoch).Seconds()
	e.n++
	e.st += t
	e.st2 += t * t
	e.sx += p.Pos.X
	e.sy += p.Pos.Y
	e.stx += t * p.Pos.X
	e.sty += t * p.Pos.Y
	e.maybeRebase()
}

// Evict drops points older than the staleness window before now.
func (e *Estimator) Evict(now time.Duration) {
	horizon := now - e.window
	for i := 0; i < len(e.pts); {
		if e.pts[i].At < horizon {
			e.remove(i)
			continue
		}
		i++
	}
	e.maybeRebase()
}

// maybeRebase re-anchors the epoch at the oldest live point once it has
// drifted more than a few windows behind, recomputing the running sums
// from the live set. This keeps the fit conditioned (epoch-relative
// times stay on the order of the window) and bounds the incremental
// sums' floating-point drift to what accumulates between rebases.
func (e *Estimator) maybeRebase() {
	if e.n == 0 {
		return
	}
	oldest := e.pts[0].At
	for _, p := range e.pts[1:] {
		if p.At < oldest {
			oldest = p.At
		}
	}
	if oldest-e.epoch <= 4*e.window {
		return
	}
	e.epoch = oldest
	e.st, e.st2, e.sx, e.sy, e.stx, e.sty = 0, 0, 0, 0, 0, 0
	for _, p := range e.pts {
		t := (p.At - e.epoch).Seconds()
		e.st += t
		e.st2 += t * t
		e.sx += p.Pos.X
		e.sy += p.Pos.Y
		e.stx += t * p.Pos.X
		e.sty += t * p.Pos.Y
	}
}

// remove deletes pts[i] (order not preserved) and subtracts its sums.
func (e *Estimator) remove(i int) {
	p := e.pts[i]
	t := (p.At - e.epoch).Seconds()
	e.n--
	e.st -= t
	e.st2 -= t * t
	e.sx -= p.Pos.X
	e.sy -= p.Pos.Y
	e.stx -= t * p.Pos.X
	e.sty -= t * p.Pos.Y
	last := len(e.pts) - 1
	e.pts[i] = e.pts[last]
	e.pts = e.pts[:last]
}

// Estimate interpolates the target position at now. With a degenerate
// time spread (all traces near-simultaneous) it falls back to the
// centroid; with none it reports no estimate. Extrapolation is clamped to
// half a window past the newest trace so a stale field cannot fling the
// estimate along an old velocity vector.
func (e *Estimator) Estimate(now time.Duration) (geom.Point, bool) {
	if e.n == 0 {
		return geom.Point{}, false
	}
	n := float64(e.n)
	cx, cy := e.sx/n, e.sy/n
	denom := n*e.st2 - e.st*e.st
	// Degenerate spread: the fit is ill-conditioned, use the centroid.
	if denom < 1e-9 {
		return geom.Point{X: cx, Y: cy}, true
	}
	bx := (n*e.stx - e.st*e.sx) / denom
	by := (n*e.sty - e.st*e.sy) / denom
	t := now
	if newest, ok := e.Newest(); ok && t > newest+e.window/2 {
		t = newest + e.window/2
	}
	dt := (t - e.epoch).Seconds() - e.st/n
	return geom.Point{X: cx + bx*dt, Y: cy + by*dt}, true
}
