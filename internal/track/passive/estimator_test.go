package passive

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
)

// refEstimator is the brute-force reference: it keeps the raw live point
// set (same window and capacity semantics as Estimator) and refits the
// least-squares line from scratch on every query. The property test
// checks the incremental sums against it, bounding their accumulated
// floating-point drift.
type refEstimator struct {
	window time.Duration
	pts    []Point
}

func (r *refEstimator) add(p Point) {
	if len(r.pts) >= maxPoints {
		oldest := 0
		for i, q := range r.pts {
			if q.At < r.pts[oldest].At {
				oldest = i
			}
		}
		r.pts = append(r.pts[:oldest], r.pts[oldest+1:]...)
	}
	r.pts = append(r.pts, p)
}

func (r *refEstimator) evict(now time.Duration) {
	horizon := now - r.window
	keep := r.pts[:0]
	for _, p := range r.pts {
		if p.At >= horizon {
			keep = append(keep, p)
		}
	}
	r.pts = keep
}

func (r *refEstimator) estimate(now time.Duration) (geom.Point, bool) {
	if len(r.pts) == 0 {
		return geom.Point{}, false
	}
	// Fit in times relative to the oldest live point: the least-squares
	// line is shift-invariant, so this computes the same estimate as
	// absolute timestamps in exact arithmetic while staying conditioned
	// at large simulation times (matching the estimator's epoch scheme —
	// fitting in raw absolute seconds loses the comparison's precision to
	// the reference's own cancellation, not the estimator's drift).
	n := float64(len(r.pts))
	oldest, newest := r.pts[0].At, r.pts[0].At
	for _, p := range r.pts {
		if p.At < oldest {
			oldest = p.At
		}
		if p.At > newest {
			newest = p.At
		}
	}
	var st, st2, sx, sy, stx, sty float64
	for _, p := range r.pts {
		t := (p.At - oldest).Seconds()
		st += t
		st2 += t * t
		sx += p.Pos.X
		sy += p.Pos.Y
		stx += t * p.Pos.X
		sty += t * p.Pos.Y
	}
	cx, cy := sx/n, sy/n
	denom := n*st2 - st*st
	if denom < 1e-9 {
		return geom.Point{X: cx, Y: cy}, true
	}
	bx := (n*stx - st*sx) / denom
	by := (n*sty - st*sy) / denom
	t := now
	if t > newest+r.window/2 {
		t = newest + r.window/2
	}
	dt := (t - oldest).Seconds() - st/n
	return geom.Point{X: cx + bx*dt, Y: cy + by*dt}, true
}

// TestEstimatorMatchesReference is the property test: over long random
// schedules of adds, evictions, and queries, the incremental estimator
// must agree with the from-scratch reference refit within a tight
// floating-point tolerance, and their live point counts must match
// exactly.
func TestEstimatorMatchesReference(t *testing.T) {
	const (
		window = 2100 * time.Millisecond
		trials = 20
		steps  = 400
		tol    = 1e-6
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		est := NewEstimator(window)
		ref := &refEstimator{window: window}
		now := time.Duration(0)
		for step := 0; step < steps; step++ {
			// Time advances in jittered sub-window increments, so points
			// continually age across the eviction horizon.
			now += time.Duration(rng.Int63n(int64(window / 4)))
			switch rng.Intn(4) {
			case 0, 1: // add a point near the current time (possibly in the recent past)
				at := now - time.Duration(rng.Int63n(int64(window/2)))
				p := Point{At: at, Pos: geom.Pt(rng.Float64()*10, rng.Float64()*10)}
				est.Add(p)
				ref.add(p)
			case 2: // evict
				est.Evict(now)
				ref.evict(now)
			case 3: // burst of simultaneous points (degenerate time spread)
				at := now
				for k := 0; k < 3; k++ {
					p := Point{At: at, Pos: geom.Pt(rng.Float64()*10, rng.Float64()*10)}
					est.Add(p)
					ref.add(p)
				}
			}
			if est.Len() != len(ref.pts) {
				t.Fatalf("trial %d step %d: live points = %d, reference = %d", trial, step, est.Len(), len(ref.pts))
			}
			got, gotOK := est.Estimate(now)
			want, wantOK := ref.estimate(now)
			if gotOK != wantOK {
				t.Fatalf("trial %d step %d: estimate ok = %t, reference = %t", trial, step, gotOK, wantOK)
			}
			if !gotOK {
				continue
			}
			if math.Abs(got.X-want.X) > tol || math.Abs(got.Y-want.Y) > tol {
				t.Fatalf("trial %d step %d: estimate %v diverges from reference %v (n=%d)",
					trial, step, got, want, est.Len())
			}
		}
	}
}

// TestEstimatorCapacityBound floods the estimator past maxPoints and
// checks the cap holds by evicting the oldest point first.
func TestEstimatorCapacityBound(t *testing.T) {
	est := NewEstimator(time.Hour)
	for i := 0; i < maxPoints+50; i++ {
		est.Add(Point{At: time.Duration(i) * time.Millisecond, Pos: geom.Pt(float64(i), 0)})
	}
	if est.Len() != maxPoints {
		t.Fatalf("live points = %d, want cap %d", est.Len(), maxPoints)
	}
	if newest, ok := est.Newest(); !ok || newest != time.Duration(maxPoints+49)*time.Millisecond {
		t.Errorf("newest = %v, %t; want the last added point", newest, ok)
	}
}

// TestEstimatorEmptyAndDegenerate pins the edge cases: no points means
// no estimate; a single instant's points mean the centroid.
func TestEstimatorEmptyAndDegenerate(t *testing.T) {
	est := NewEstimator(time.Second)
	if _, ok := est.Estimate(0); ok {
		t.Error("empty estimator produced an estimate")
	}
	est.Add(Point{At: time.Second, Pos: geom.Pt(2, 0)})
	est.Add(Point{At: time.Second, Pos: geom.Pt(4, 2)})
	got, ok := est.Estimate(time.Second)
	if !ok {
		t.Fatal("no estimate from two live points")
	}
	if math.Abs(got.X-3) > 1e-12 || math.Abs(got.Y-1) > 1e-12 {
		t.Errorf("degenerate-spread estimate = %v, want centroid (3,1)", got)
	}
}
