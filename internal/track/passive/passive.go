// Package passive implements the passive-traces tracking backend, after
// Marculescu et al., "Lightweight Target Tracking Using Passive Traces in
// Sensor Networks": motes that detect the target deposit timestamped
// trace records, gossip recent traces to their one-hop neighborhood, and
// a lightweight estimator interpolates the target position from the trace
// field. There is no leader election and there are no heartbeats — the
// mote running the context's objects (the "estimator") is chosen by a
// purely local rule over the trace field: among motes with a fresh own
// trace, the one closest to the current position estimate takes over
// after a short random backoff, announcing itself with an immediate
// gossip. The role is sticky — gossip frames carry the sender's active
// flag, a fresh foreign active flag suppresses challengers, and a
// lower-id active flag makes one of two concurrent estimators yield
// deterministically — so the estimator persists for about half a sensing
// window instead of flapping with every trace arrival. The backend emits
// the same report-lifecycle (radio.Corr) and label-lifecycle events as
// the leader backend, so obs, ettrace, the metrics registry, and the
// coherence ledger work unchanged.
//
// Timing derives from the shared group.Config knobs so scenarios tune
// both backends consistently: traces are deposited every HeartbeatPeriod
// (jittered like heartbeats), a trace is an estimator-election candidate
// while younger than ReceiveFactor x HeartbeatPeriod, and the whole trace
// field goes stale — forcing the estimator to step down — after
// WaitFactor x HeartbeatPeriod.
package passive

import (
	"fmt"
	"sort"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/mote"
	"envirotrack/internal/obs"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
	"envirotrack/internal/track"
)

func init() {
	track.Register(track.BackendPassive, New)
}

// TraceBits is the on-air size of one trace record inside a gossip frame
// (mote id, position, timestamp, sequence).
const TraceBits = 16 * 8

// gossipFanout caps how many recent traces one gossip frame carries.
const gossipFanout = 8

// Rec is one deposited trace record as carried in gossip frames.
type Rec struct {
	Mote radio.NodeID
	Pos  geom.Point
	At   time.Duration
	Seq  uint64
}

// Gossip is the backend's only frame payload: the sender's recent view of
// the trace field for one context label.
type Gossip struct {
	CtxType string
	Label   group.Label
	From    radio.NodeID
	Active  bool   // sender is currently the estimator
	State   []byte // label persistent state, piggybacked like heartbeat state
	Traces  []Rec
}

// Backend is the per-mote passive-traces protocol instance.
type Backend struct {
	m       *mote.Mote
	ctxType string
	cfg     group.Config
	cb      track.Callbacks
	ledger  *trace.Ledger

	sensing bool
	label   group.Label
	minted  bool // label was minted by this mote (for deletion accounting)
	active  bool
	// creationActivation marks the next activation as the minting one, so
	// it records LabelCreated alone rather than a takeover.
	creationActivation bool
	labelSeq           int
	state              []byte

	traces []Rec // latest record per mote, sorted by mote id
	est    *Estimator

	// lastActiveAt is when gossip last carried another mote's active
	// flag; a fresh foreign flag suppresses activation (stickiness).
	lastActiveAt   time.Duration
	haveActivePeer bool

	depositTimer  simtime.Timer
	creationTimer simtime.Timer
	staleTimer    simtime.Timer
	takeoverTimer simtime.Timer
	stopped       bool

	depositFire  simtime.Callback
	creationFire simtime.Callback
	staleFire    simtime.Callback
	takeoverFire simtime.Callback

	// scratch is the gossip-assembly buffer, reused across deposits.
	scratch []Rec
}

// New constructs the passive backend (registered under "passive").
func New(d track.Deps) track.Backend {
	cfg := withGroupDefaults(d.Group)
	b := &Backend{
		m:       d.Mote,
		ctxType: d.CtxType,
		cfg:     cfg,
		cb:      d.Callbacks,
		ledger:  d.Ledger,
		est:     NewEstimator(staleness(cfg)),
	}
	b.depositFire = func() {
		if b.stopped {
			return
		}
		if !b.m.Failed() && b.sensing && b.label != "" {
			b.deposit()
		}
		// Keep the chain alive through failures so a restored mote resumes
		// depositing; it dies only when sensing stops or the backend stops.
		if b.sensing {
			b.scheduleNextDeposit()
		}
	}
	b.creationFire = func() {
		if b.stopped || b.m.Failed() || !b.sensing {
			return
		}
		if b.label == "" {
			b.mintLabel()
		}
		b.startDepositing()
	}
	b.staleFire = func() {
		if b.stopped {
			return
		}
		b.reevaluate()
		if b.active {
			b.armStaleTimer()
		}
	}
	b.takeoverFire = func() {
		if b.stopped {
			return
		}
		// Re-check eligibility at fire time: a fresh foreign active flag
		// (another candidate won the race backoff) or an aged-out own
		// trace calls the takeover off.
		now := b.m.Scheduler().Now()
		b.evictStale(now)
		if b.eligible(now) {
			b.activate()
			b.announce()
		}
	}
	d.Mote.AddFrameHandler(b.handleFrame)
	return b
}

// withGroupDefaults mirrors group.Config's defaulting for the knobs the
// passive backend shares (the group copy is unexported).
func withGroupDefaults(c group.Config) group.Config {
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = group.DefaultHeartbeatPeriod
	}
	if c.ReceiveFactor <= 0 {
		c.ReceiveFactor = group.DefaultReceiveFactor
	}
	if c.WaitFactor <= 0 {
		c.WaitFactor = group.DefaultWaitFactor
	}
	if c.CreationBackoff <= 0 {
		c.CreationBackoff = c.HeartbeatPeriod / 2
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.1
	}
	if c.HeartbeatBits <= 0 {
		c.HeartbeatBits = group.DefaultHeartbeatBits
	}
	return c
}

// depositPeriod is how often a sensing mote deposits (and gossips) a trace.
func depositPeriod(c group.Config) time.Duration { return c.HeartbeatPeriod }

// freshSlack is the estimator-election candidacy window: a mote competes
// while its own newest trace is at most this old.
func freshSlack(c group.Config) time.Duration {
	return time.Duration(float64(c.HeartbeatPeriod) * c.ReceiveFactor)
}

// staleness is the trace-field staleness bound: traces older than this are
// evicted, and an estimator whose whole view is older must step down.
func staleness(c group.Config) time.Duration {
	return time.Duration(float64(c.HeartbeatPeriod) * c.WaitFactor)
}

// Staleness exposes the trace staleness bound derived from a group config
// (the invariant checker and docs share the derivation).
func Staleness(c group.Config) time.Duration { return staleness(withGroupDefaults(c)) }

// --- track.Backend ---

// SetSensing informs the backend of the mote's sensee() evaluation.
func (b *Backend) SetSensing(sensing bool) {
	if b.m.Failed() || sensing == b.sensing {
		return
	}
	b.sensing = sensing
	if h, i := b.m.Hot(); h != nil {
		h.SetSensing(i, b.ctxType, sensing)
	}
	if sensing {
		b.onStartSensing()
	} else {
		b.onStopSensing()
	}
}

// Sensing returns the last sensing state supplied via SetSensing.
func (b *Backend) Sensing() bool { return b.sensing }

// Label returns the context label this mote currently knows for the type.
func (b *Backend) Label() group.Label {
	if !b.Participating() {
		return ""
	}
	return b.label
}

// Participating reports whether the mote takes part in the protocol: it
// is depositing traces for a label (sensing) or still active as the
// estimator.
func (b *Backend) Participating() bool {
	return b.label != "" && (b.sensing || b.active)
}

// SetState stores label state; only the active estimator's state is
// gossiped authoritatively.
func (b *Backend) SetState(state []byte) {
	if !b.active {
		return
	}
	b.state = append([]byte(nil), state...)
}

// State returns the label persistent state as known by this mote.
func (b *Backend) State() []byte { return b.state }

// Stop tears down all timers and silences the backend.
func (b *Backend) Stop() {
	b.stopped = true
	b.stopTimer(&b.depositTimer)
	b.stopTimer(&b.creationTimer)
	b.stopTimer(&b.staleTimer)
	b.stopTimer(&b.takeoverTimer)
}

// Estimate interpolates the target position from this mote's view of the
// trace field (diagnostics and tests).
func (b *Backend) Estimate(now time.Duration) (geom.Point, bool) {
	return b.est.Estimate(now)
}

// --- sensing transitions ---

func (b *Backend) onStartSensing() {
	// Forget a fully evaporated label: with no live trace and no active
	// episode the old label identity is stale memory, and a new detection
	// is a new entity (the group protocol's expired wait timer).
	b.evictStale(b.m.Scheduler().Now())
	if b.label != "" && len(b.traces) == 0 && !b.active {
		b.label = ""
		b.minted = false
		b.creationActivation = false
	}
	if h, i := b.m.Hot(); h != nil {
		h.SetMember(i, b.ctxType, b.label != "")
	}
	if b.label != "" {
		// A label is already known (gossip memory or a previous episode):
		// start depositing immediately.
		b.startDepositing()
		return
	}
	// No label known: back off briefly in case gossip is in flight, then
	// mint one (the group protocol's creation backoff, same RNG shape).
	if b.creationTimer.Pending() {
		return
	}
	backoff := time.Duration(b.m.Rand().Float64() * float64(b.cfg.CreationBackoff))
	b.creationTimer = b.m.Scheduler().AfterOwned(backoff, simtime.OwnerGroup, b.creationFire)
}

func (b *Backend) onStopSensing() {
	b.stopTimer(&b.depositTimer)
	b.stopTimer(&b.creationTimer)
	b.stopTimer(&b.takeoverTimer)
	if h, i := b.m.Hot(); h != nil {
		h.SetMember(i, b.ctxType, false)
	}
	if b.active {
		b.deactivate()
	}
}

// --- depositing and gossip ---

func (b *Backend) mintLabel() {
	b.labelSeq++
	b.label = group.Label(fmt.Sprintf("%s/%d.%d", b.ctxType, b.m.ID(), b.labelSeq))
	b.minted = true
	b.creationActivation = true
	b.recordEvent(trace.LabelCreated, b.label)
}

func (b *Backend) startDepositing() {
	if h, i := b.m.Hot(); h != nil {
		h.SetMember(i, b.ctxType, true)
	}
	if b.depositTimer.Pending() {
		return
	}
	// First trace immediately (detection latency), then jittered periodic.
	b.deposit()
	b.scheduleNextDeposit()
}

func (b *Backend) scheduleNextDeposit() {
	jitter := 1 + b.cfg.JitterFrac*(b.m.Rand().Float64()-0.5)
	d := time.Duration(float64(depositPeriod(b.cfg)) * jitter)
	b.depositTimer = b.m.Scheduler().AfterOwned(d, simtime.OwnerGroup, b.depositFire)
}

// deposit records a fresh own trace and gossips the recent trace field.
func (b *Backend) deposit() {
	now := b.m.Scheduler().Now()
	corr := radio.Corr{Origin: int32(b.m.ID()), Seq: b.m.NextCorrSeq()}
	rec := Rec{Mote: b.m.ID(), Pos: b.m.Pos(), At: now, Seq: uint64(corr.Seq)}
	b.integrate(rec)

	traces := b.recentTraces(now)
	bits := b.cfg.HeartbeatBits + len(traces)*TraceBits + len(b.state)*8
	b.emitCorr(obs.EvReportSent, radio.Broadcast, corr, "")
	b.m.BroadcastTraced(trace.KindTrace, bits, Gossip{
		CtxType: b.ctxType,
		Label:   b.label,
		From:    b.m.ID(),
		Active:  b.active,
		State:   b.state,
		Traces:  traces,
	}, corr)
	b.reevaluate()
	if b.active {
		b.armStaleTimer()
	}
}

// recentTraces assembles the gossip payload: the freshest records in the
// live window, newest first (ties by mote id), own record always included.
func (b *Backend) recentTraces(now time.Duration) []Rec {
	horizon := now - staleness(b.cfg)
	b.scratch = b.scratch[:0]
	for _, r := range b.traces {
		if r.At >= horizon {
			b.scratch = append(b.scratch, r)
		}
	}
	sort.Slice(b.scratch, func(i, j int) bool {
		if b.scratch[i].At != b.scratch[j].At {
			return b.scratch[i].At > b.scratch[j].At
		}
		return b.scratch[i].Mote < b.scratch[j].Mote
	})
	n := len(b.scratch)
	if n > gossipFanout {
		n = gossipFanout
	}
	out := make([]Rec, n)
	copy(out, b.scratch[:n])
	return out
}

// integrate merges one trace record into the local field; returns true
// when the record was new (fresher than the known record for its mote).
func (b *Backend) integrate(rec Rec) bool {
	i := sort.Search(len(b.traces), func(i int) bool { return b.traces[i].Mote >= rec.Mote })
	if i < len(b.traces) && b.traces[i].Mote == rec.Mote {
		if rec.Seq <= b.traces[i].Seq {
			return false
		}
		b.traces[i] = rec
	} else {
		b.traces = append(b.traces, Rec{})
		copy(b.traces[i+1:], b.traces[i:])
		b.traces[i] = rec
	}
	b.est.Add(Point{At: rec.At, Pos: rec.Pos})
	if b.active && b.cb.OnReport != nil && rec.Mote != b.m.ID() {
		b.cb.OnReport(rec.Mote, track.TraceSample{MoteID: rec.Mote, Pos: rec.Pos, At: rec.At})
	}
	return true
}

// --- frames ---

func (b *Backend) handleFrame(f radio.Frame) bool {
	g, ok := f.Payload.(Gossip)
	if !ok || g.CtxType != b.ctxType {
		return false
	}
	b.onGossip(g, f.Corr)
	return true
}

func (b *Backend) onGossip(g Gossip, corr radio.Corr) {
	if b.stopped {
		return
	}
	b.adoptLabel(g.Label)
	if g.State != nil && (g.Active || b.state == nil) {
		b.state = g.State
	}
	if g.Active && g.From != b.m.ID() {
		b.lastActiveAt = b.m.Scheduler().Now()
		b.haveActivePeer = true
		if b.active && g.From < b.m.ID() {
			// Concurrent estimators converge by id: the higher yields.
			b.deactivate()
		}
	}
	fresh := 0
	for _, rec := range g.Traces {
		if b.integrate(rec) {
			fresh++
		}
	}
	// Close the gossip span: delivered when it taught us anything, dropped
	// as stale otherwise (the passive analogue of "stale_leader").
	if corr.Seq != 0 {
		if fresh > 0 {
			b.emitCorr(obs.EvRouteDelivered, g.From, corr, "")
		} else {
			b.emitCorr(obs.EvRouteDropped, g.From, corr, "stale_trace")
		}
	}
	// Gossip while sensing but before the creation backoff fired: the
	// label exists, start depositing against it right away.
	if b.sensing && !b.depositTimer.Pending() && b.label != "" && !b.m.Failed() {
		b.stopTimer(&b.creationTimer)
		b.startDepositing()
		return // startDepositing deposited, which reevaluated
	}
	b.reevaluate()
}

// adoptLabel merges label identities deterministically: the
// lexicographically smallest label of the type wins globally, so
// concurrently minted labels converge without any election.
func (b *Backend) adoptLabel(label group.Label) {
	if label == "" {
		return
	}
	if b.label == "" {
		b.label = label
		b.minted = false
		if b.sensing {
			b.emit(obs.EvLabelJoined, label, radio.Broadcast, 0)
		}
		return
	}
	if label >= b.label {
		return
	}
	old := b.label
	wasActive := b.active
	if wasActive {
		b.deactivate()
	}
	if b.minted {
		// Our minted label lost the merge: delete it, mirroring the group
		// protocol's weight-based spurious-label suppression.
		b.recordEvent(trace.LabelDeleted, old)
		if b.cb.OnLabelDeleted != nil {
			b.cb.OnLabelDeleted(old)
		}
	}
	b.label = label
	b.minted = false
	b.creationActivation = false
	if b.sensing {
		b.emit(obs.EvLabelJoined, label, radio.Broadcast, 0)
	}
}

// --- estimator election ---

// reevaluate applies the local estimator-election rule. An active
// estimator keeps the role while its own trace stays fresh (the role is
// sticky; only a lower-id active flag makes it yield, in onGossip). An
// inactive mote that finds itself eligible — own trace fresh, best-placed
// candidate, no fresh foreign active flag — does not activate on the
// spot: it arms a short random takeover backoff (the group protocol's
// creation-backoff shape) and re-checks at fire time. The backoff breaks
// the race that otherwise erupts when an estimator steps down and every
// candidate hears about it in the same gossip frame; the first backoff to
// fire activates and announces immediately, and its active flag calls
// the other candidates' takeovers off. The minting mote is the one
// exception: it activates synchronously, since by construction it minted
// because no gossip reached it — there is no one to race.
func (b *Backend) reevaluate() {
	now := b.m.Scheduler().Now()
	b.evictStale(now)

	if b.active {
		ownOK := b.sensing && b.label != "" && !b.m.Failed() && b.ownFresh(now)
		if !ownOK {
			b.deactivate()
		}
		return
	}
	if b.creationActivation && b.sensing && b.label != "" && !b.m.Failed() {
		b.activate()
		return
	}
	if b.eligible(now) {
		b.armTakeoverTimer()
	} else {
		b.stopTimer(&b.takeoverTimer)
	}
}

// ownFresh reports whether this mote's own trace is inside the
// estimator-candidacy window.
func (b *Backend) ownFresh(now time.Duration) bool {
	slackHorizon := now - freshSlack(b.cfg)
	for _, r := range b.traces {
		if r.Mote == b.m.ID() {
			return r.At >= slackHorizon
		}
	}
	return false
}

// eligible is the inactive-candidate condition: sensing against a label,
// own trace fresh, best-placed by the election metric, and no foreign
// active flag heard within the candidacy window. Electing the fresh
// trace closest to the position estimate rather than, say, the lowest id
// matters for report continuity: the lowest fresh id is the trailing
// edge of a moving target's sensing region, a mote about to lose its own
// trace, while the closest mote keeps the role for about half a sensing
// window.
func (b *Backend) eligible(now time.Duration) bool {
	if b.active || !b.sensing || b.label == "" || b.m.Failed() {
		return false
	}
	if b.haveActivePeer && now-b.lastActiveAt <= freshSlack(b.cfg) {
		return false
	}
	return b.ownFresh(now) && b.bestCandidate(now) == b.m.ID()
}

// armTakeoverTimer schedules the takeover re-check after a fresh random
// backoff; a pending backoff is left to run (re-arming on every gossip
// would push the fire time around and re-randomize the race).
func (b *Backend) armTakeoverTimer() {
	if b.takeoverTimer.Pending() {
		return
	}
	d := time.Duration(b.m.Rand().Float64() * float64(b.cfg.CreationBackoff))
	b.takeoverTimer = b.m.Scheduler().AfterOwned(d, simtime.OwnerGroup, b.takeoverFire)
}

// announce deposits (and therefore gossips) immediately after a
// takeover, so the new estimator's active flag reaches the other
// candidates before their own backoffs fire, instead of waiting out the
// rest of the jittered deposit period.
func (b *Backend) announce() {
	if b.m.Failed() || !b.sensing || b.label == "" {
		return
	}
	b.deposit()
}

// bestCandidate returns the fresh trace closest to the current position
// estimate (ties to the lower mote id), or -1 with no fresh traces. The
// estimate falls back to the freshest candidates' centroid implicitly:
// Estimate always returns a point once any trace is live.
func (b *Backend) bestCandidate(now time.Duration) radio.NodeID {
	target, ok := b.est.Estimate(now)
	if !ok {
		return -1
	}
	slackHorizon := now - freshSlack(b.cfg)
	best := radio.NodeID(-1)
	bestDist := 0.0
	for _, r := range b.traces {
		if r.At < slackHorizon {
			continue
		}
		d := r.Pos.Dist(target)
		if best < 0 || d < bestDist || (d == bestDist && r.Mote < best) {
			best = r.Mote
			bestDist = d
		}
	}
	return best
}

// evictStale drops trace records past the staleness bound.
func (b *Backend) evictStale(now time.Duration) {
	horizon := now - staleness(b.cfg)
	keep := b.traces[:0]
	for _, r := range b.traces {
		if r.At >= horizon {
			keep = append(keep, r)
		}
	}
	b.traces = keep
	b.est.Evict(now)
}

func (b *Backend) activate() {
	b.active = true
	b.stopTimer(&b.takeoverTimer)
	if b.creationActivation {
		// The minting activation: LabelCreated was already recorded.
		b.creationActivation = false
	} else {
		// The estimator role moved here: a successful handover.
		b.recordEvent(trace.LabelTakeover, b.label)
	}
	if b.cb.OnActivate != nil {
		b.cb.OnActivate(b.label, b.state)
	}
	// Replay the live trace field into the freshly built aggregation
	// windows, in deterministic mote-id order.
	if b.cb.OnReport != nil {
		for _, r := range b.traces {
			if r.Mote == b.m.ID() {
				continue
			}
			b.cb.OnReport(r.Mote, track.TraceSample{MoteID: r.Mote, Pos: r.Pos, At: r.At})
		}
	}
	b.armStaleTimer()
}

func (b *Backend) deactivate() {
	label := b.label
	b.active = false
	b.stopTimer(&b.staleTimer)
	b.emit(obs.EvLeaderStepDown, label, radio.Broadcast, 0)
	if b.cb.OnDeactivate != nil {
		b.cb.OnDeactivate(label)
	}
}

// armStaleTimer schedules the estimate-staleness check: if the whole
// trace field ages past the staleness bound, the estimator steps down.
func (b *Backend) armStaleTimer() {
	b.stopTimer(&b.staleTimer)
	b.staleTimer = b.m.Scheduler().AfterOwned(staleness(b.cfg), simtime.OwnerGroup, b.staleFire)
}

// --- bookkeeping ---

func (b *Backend) stopTimer(t *simtime.Timer) {
	t.Stop()
	*t = simtime.Timer{}
}

func (b *Backend) recordEvent(ty trace.LabelEventType, label group.Label) {
	if ev, ok := labelObsEvents[ty]; ok {
		b.emit(ev, label, radio.Broadcast, 0)
	}
	if b.ledger == nil {
		return
	}
	b.ledger.Record(trace.LabelEvent{
		At:      b.m.Scheduler().Now(),
		Type:    ty,
		Label:   string(label),
		CtxType: b.ctxType,
		Mote:    int(b.m.ID()),
	})
}

var labelObsEvents = map[trace.LabelEventType]obs.EventType{
	trace.LabelCreated:  obs.EvLabelCreated,
	trace.LabelTakeover: obs.EvLabelTakeover,
	trace.LabelDeleted:  obs.EvLabelDeleted,
}

// emitCorr publishes one report-lifecycle event for a gossip frame,
// carrying its correlation key for span assembly and invariant checking.
func (b *Backend) emitCorr(ev obs.EventType, peer radio.NodeID, corr radio.Corr, cause string) {
	if bus := b.m.Obs(); bus.Active() {
		bus.Emit(obs.Event{
			At:      b.m.Scheduler().Now(),
			Type:    ev,
			Mote:    int(b.m.ID()),
			Peer:    int(peer),
			CtxType: b.ctxType,
			Pos:     b.m.Pos(),
			Kind:    trace.KindTrace,
			Cause:   cause,
			Label:   string(b.label),
			Origin:  int(corr.Origin),
			Seq:     uint64(corr.Seq),
		})
	}
}

func (b *Backend) emit(ev obs.EventType, label group.Label, peer radio.NodeID, seq uint64) {
	if bus := b.m.Obs(); bus.Active() {
		bus.Emit(obs.Event{
			At:      b.m.Scheduler().Now(),
			Type:    ev,
			Mote:    int(b.m.ID()),
			Peer:    int(peer),
			Label:   string(label),
			CtxType: b.ctxType,
			Pos:     b.m.Pos(),
			Seq:     seq,
		})
	}
}
