package track

import "envirotrack/internal/group"

// leaderBackend adapts the EnviroTrack group-management protocol to the
// Backend interface. It is pure indirection over group.Manager — no extra
// state, no extra RNG draws, no reordered timers — so runs under the
// leader backend stay byte-identical to the pre-interface stack.
type leaderBackend struct {
	mgr *group.Manager
}

func newLeader(d Deps) Backend {
	return &leaderBackend{
		mgr: group.NewManager(d.Mote, d.CtxType, d.Group, group.Callbacks{
			ReportPayload:    d.Callbacks.ReportPayload,
			OnReport:         d.Callbacks.OnReport,
			OnBecomeLeader:   d.Callbacks.OnActivate,
			OnLoseLeadership: d.Callbacks.OnDeactivate,
			OnLabelDeleted:   d.Callbacks.OnLabelDeleted,
		}, d.Ledger),
	}
}

// Manager exposes the wrapped group manager (tests and experiments reach
// it through the optional interface upgrade).
func (b *leaderBackend) Manager() *group.Manager { return b.mgr }

func (b *leaderBackend) SetSensing(sensing bool) { b.mgr.SetSensing(sensing) }
func (b *leaderBackend) Sensing() bool           { return b.mgr.Sensing() }
func (b *leaderBackend) Label() group.Label      { return b.mgr.Label() }
func (b *leaderBackend) Participating() bool     { return b.mgr.Role() != group.RoleNone }
func (b *leaderBackend) SetState(state []byte)   { b.mgr.SetState(state) }
func (b *leaderBackend) State() []byte           { return b.mgr.State() }
func (b *leaderBackend) Stop()                   { b.mgr.Stop() }
