package track_test

import (
	"math/rand"
	"testing"
	"time"

	"envirotrack/internal/geom"
	"envirotrack/internal/group"
	"envirotrack/internal/mote"
	"envirotrack/internal/obs"
	"envirotrack/internal/phenomena"
	"envirotrack/internal/radio"
	"envirotrack/internal/simtime"
	"envirotrack/internal/trace"
	"envirotrack/internal/track"

	_ "envirotrack/internal/track/passive" // register the passive backend
)

// fastCfg compresses the protocol timing so conformance runs finish in
// a few simulated seconds.
var fastCfg = group.Config{
	HeartbeatPeriod: 100 * time.Millisecond,
	CreationBackoff: 10 * time.Millisecond,
}

// cbEvent is one recorded Callbacks invocation.
type cbEvent struct {
	kind  string // "activate" | "deactivate" | "deleted"
	mote  radio.NodeID
	label group.Label
	state []byte
	at    time.Duration
}

// backendEvents are the obs event types a tracking backend itself emits
// (as opposed to the mote/radio layers below it); the no-events-after-Stop
// check filters on this set.
var backendEvents = map[obs.EventType]bool{
	obs.EvHeartbeatSent:       true,
	obs.EvHeartbeatForwarded:  true,
	obs.EvHeartbeatSuppressed: true,
	obs.EvReceiveTimerFired:   true,
	obs.EvWaitTimerArmed:      true,
	obs.EvLabelCreated:        true,
	obs.EvLabelJoined:         true,
	obs.EvLabelTakeover:       true,
	obs.EvLabelRelinquish:     true,
	obs.EvLabelYield:          true,
	obs.EvLabelDeleted:        true,
	obs.EvLeaderStepDown:      true,
	obs.EvReportSent:          true,
	obs.EvRouteDelivered:      true,
	obs.EvRouteDropped:        true,
}

// conformNet wires motes with tracking backends on a loss-free medium and
// records every callback and backend-emitted obs event.
type conformNet struct {
	t        *testing.T
	sched    *simtime.Scheduler
	medium   *radio.Medium
	backends map[radio.NodeID]track.Backend
	log      []cbEvent
	obsLog   []obs.Event
}

func newConformNet(t *testing.T) *conformNet {
	t.Helper()
	sched := simtime.NewScheduler()
	var stats trace.Stats
	rng := rand.New(rand.NewSource(11))
	n := &conformNet{
		t:        t,
		sched:    sched,
		medium:   radio.New(sched, radio.Params{CommRadius: 2}, rng, &stats),
		backends: make(map[radio.NodeID]track.Backend),
	}
	return n
}

// obsRecorder funnels backend-emitted events into the net's log.
type obsRecorder struct{ n *conformNet }

func (r obsRecorder) Emit(ev obs.Event) {
	if backendEvents[ev.Type] {
		r.n.obsLog = append(r.n.obsLog, ev)
	}
}

func (n *conformNet) add(backend string, id radio.NodeID, pos geom.Point) track.Backend {
	n.t.Helper()
	var stats trace.Stats
	rng := rand.New(rand.NewSource(100 + int64(id)))
	m, err := mote.New(id, pos, n.sched, n.medium, phenomena.NewField(), nil, mote.Config{}, rng, &stats)
	if err != nil {
		n.t.Fatal(err)
	}
	m.SetObserver(obs.NewBus(obsRecorder{n}))
	record := func(kind string) func(group.Label) {
		return func(l group.Label) {
			n.log = append(n.log, cbEvent{kind: kind, mote: id, label: l, at: n.sched.Now()})
		}
	}
	be, err := track.New(backend, track.Deps{
		Mote:    m,
		CtxType: "tracker",
		Group:   fastCfg,
		Callbacks: track.Callbacks{
			OnActivate: func(l group.Label, state []byte) {
				n.log = append(n.log, cbEvent{kind: "activate", mote: id, label: l, state: state, at: n.sched.Now()})
			},
			OnDeactivate:   record("deactivate"),
			OnLabelDeleted: record("deleted"),
		},
		Ledger: &trace.Ledger{},
	})
	if err != nil {
		n.t.Fatal(err)
	}
	n.backends[id] = be
	return be
}

func (n *conformNet) senseAt(id radio.NodeID, at time.Duration, sensing bool) {
	n.sched.At(at, func() { n.backends[id].SetSensing(sensing) })
}

func (n *conformNet) runUntil(d time.Duration) {
	n.t.Helper()
	if err := n.sched.RunUntil(d); err != nil {
		n.t.Fatal(err)
	}
}

// forEachBackend runs the conformance check against every registered
// backend, so a new registration is covered automatically.
func forEachBackend(t *testing.T, f func(t *testing.T, backend string)) {
	names := track.Names()
	if len(names) < 2 {
		t.Fatalf("registry holds %v, want at least leader and passive", names)
	}
	for _, be := range names {
		t.Run(be, func(t *testing.T) { f(t, be) })
	}
}

// TestConformanceSingleMoteActivates: a lone sensing mote must create a
// label and activate under any backend.
func TestConformanceSingleMoteActivates(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		n := newConformNet(t)
		be := n.add(backend, 1, geom.Pt(0, 0))
		n.senseAt(1, 0, true)
		n.runUntil(time.Second)

		if !be.Participating() || be.Label() == "" {
			t.Fatalf("participating=%t label=%q, want active participation", be.Participating(), be.Label())
		}
		if !be.Sensing() {
			t.Error("Sensing() = false after SetSensing(true)")
		}
		var activations int
		for _, ev := range n.log {
			if ev.kind == "activate" && ev.mote == 1 {
				activations++
			}
		}
		if activations != 1 {
			t.Errorf("activations = %d, want exactly 1", activations)
		}
	})
}

// TestConformanceActivatePairing drives a two-mote handover (the first
// sensor goes quiet, the second keeps sensing) and checks the callback
// contract: per mote, activate and deactivate strictly alternate,
// starting with activate; labels match within each pair.
func TestConformanceActivatePairing(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		n := newConformNet(t)
		n.add(backend, 1, geom.Pt(0, 0))
		n.add(backend, 2, geom.Pt(1, 0))
		n.senseAt(1, 0, true)
		n.senseAt(2, 300*time.Millisecond, true)
		n.senseAt(1, 2*time.Second, false)
		n.runUntil(5 * time.Second)

		active := map[radio.NodeID]group.Label{}
		for _, ev := range n.log {
			switch ev.kind {
			case "activate":
				if l, on := active[ev.mote]; on {
					t.Fatalf("mote %d activated for %q while already active for %q at %v", ev.mote, ev.label, l, ev.at)
				}
				active[ev.mote] = ev.label
			case "deactivate":
				l, on := active[ev.mote]
				if !on {
					t.Fatalf("mote %d deactivated for %q while not active at %v", ev.mote, ev.label, ev.at)
				}
				if l != ev.label {
					t.Fatalf("mote %d deactivated for %q but was activated for %q", ev.mote, ev.label, l)
				}
				delete(active, ev.mote)
			}
		}
		if len(active) != 1 {
			t.Errorf("motes left active = %d, want exactly 1 (mote 2 carries the label)", len(active))
		}
		if _, on := active[2]; !on {
			t.Errorf("mote 2 is not the active mote at the end: %v", active)
		}
	})
}

// TestConformanceStateHandoff: state set by the active mote must reach
// the successor's OnActivate when the role moves.
func TestConformanceStateHandoff(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		n := newConformNet(t)
		n.add(backend, 1, geom.Pt(0, 0))
		n.add(backend, 2, geom.Pt(1, 0))
		n.senseAt(1, 0, true)
		n.senseAt(2, 300*time.Millisecond, true)
		// Let mote 1 activate and publish state, then lose sensing.
		n.sched.At(time.Second, func() {
			if !n.backends[1].Participating() {
				t.Fatal("mote 1 not participating at state-set time")
			}
			n.backends[1].SetState([]byte("carried"))
		})
		n.senseAt(1, 2*time.Second, false)
		n.runUntil(5 * time.Second)

		var handoff *cbEvent
		for i := range n.log {
			ev := &n.log[i]
			if ev.kind == "activate" && ev.mote == 2 {
				handoff = ev
			}
		}
		if handoff == nil {
			t.Fatal("mote 2 never activated after mote 1 went quiet")
		}
		if string(handoff.state) != "carried" {
			t.Errorf("successor activated with state %q, want %q", handoff.state, "carried")
		}
	})
}

// TestConformanceNoEventsAfterStop: after Stop returns, a backend must
// invoke no callbacks and emit no protocol events, even while frames are
// still in flight and sensing continues.
func TestConformanceNoEventsAfterStop(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		n := newConformNet(t)
		n.add(backend, 1, geom.Pt(0, 0))
		n.add(backend, 2, geom.Pt(1, 0))
		n.senseAt(1, 0, true)
		n.senseAt(2, 0, true)
		const stopAt = 2 * time.Second
		n.sched.At(stopAt, func() {
			for _, be := range n.backends {
				be.Stop()
			}
		})
		n.runUntil(5 * time.Second)

		for _, ev := range n.log {
			if ev.at > stopAt {
				t.Errorf("callback %s on mote %d at %v, after Stop at %v", ev.kind, ev.mote, ev.at, stopAt)
			}
		}
		sawBefore := false
		for _, ev := range n.obsLog {
			if ev.At <= stopAt {
				sawBefore = true
			} else {
				t.Errorf("backend event %v on mote %d at %v, after Stop at %v", ev.Type, ev.Mote, ev.At, stopAt)
			}
		}
		if !sawBefore {
			t.Error("backend emitted no events before Stop; harness is not observing anything")
		}
	})
}

// TestRegistryRejectsUnknownAndDuplicate pins the registry error paths.
func TestRegistryRejectsUnknownAndDuplicate(t *testing.T) {
	if _, err := track.New("no-such-backend", track.Deps{}); err == nil {
		t.Error("constructing an unknown backend succeeded, want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	track.Register(track.BackendLeader, func(track.Deps) track.Backend { return nil })
}
