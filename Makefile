GO ?= go

.PHONY: all build test race vet bench bench-compare profile clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates every paper table/figure benchmark plus the substrate
# micro-benchmarks, emitting the machine-readable trajectory the ROADMAP
# tracks. -benchtime 1x keeps the sweep-heavy experiment benches bounded,
# and -count 3 takes three samples of each: benchcmp folds duplicates
# best-of (max for rates, min for /op costs), so one scheduling hiccup on
# a shared machine cannot fake a >10% regression. -benchmem records
# allocs/op and B/op so the zero-allocation core is guarded alongside
# throughput. A second steady-state pass then re-runs the pooled
# micro-benchmarks at high iteration counts and appends them to the same
# snapshot: at 1x their numbers include pool warm-up allocations, and the
# best-of parsing lets the steady-state lines (0 allocs/op) replace them
# so the zero-alloc gate is meaningful.
#
# The output file is BENCH_<N+1>.json where N is the highest checked-in
# snapshot, so every run gets a fresh number and bench-compare can always
# diff against the newest committed baseline.
# Numbered snapshots: BENCH_1.json predates the observability layer,
# BENCH_2.json includes the tracing-overhead benchmark, BENCH_3.json adds
# -benchmem plus the scheduler-churn and broadcast-fanout benches on the
# pooled zero-allocation core, BENCH_4.json covers the batched-delivery +
# struct-of-arrays core and the 10k-mote BenchmarkLargeField tier,
# BENCH_5.json adds causal span correlation plus the machine-calibration
# benchmark (recorded on a ~20% slower host than BENCH_4; interleaved
# same-host A/B showed parity, and from this snapshot on benchcmp
# normalizes that shift away), BENCH_6.json adds the sharded 10k tiers
# (LargeField/10k-shards{2,4}: the deterministic shard merge keeps
# per-shard heaps small, a modest single-threaded win; serial paths
# unchanged within noise), BENCH_7.json adds the free-running parallel
# tiers (LargeField/10k-par{2,4}: statistically equivalent engine;
# parity with serial on this single-CPU host — the window protocol's
# speedup needs cores).
BENCH_STEADY = ^(BenchmarkSchedulerStep|BenchmarkSchedulerChurn|BenchmarkBroadcastFanout|BenchmarkAppendNodesNear)$$

bench:
	@set -e; \
	n=$$(ls BENCH_*.json 2>/dev/null | sed -En 's/^BENCH_([0-9]+)\.json$$/\1/p' | sort -n | tail -1); \
	out=BENCH_$$(( $${n:-0} + 1 )).json; \
	echo "bench: writing $$out"; \
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 3 -benchmem -json ./... > $$out; \
	$(GO) test -run '^$$' -bench 'LargeField/10k' -benchtime 1x -count 3 -benchmem -json . >> $$out; \
	$(GO) test -run '^$$' -bench '$(BENCH_STEADY)' -benchtime 100000x -benchmem -json ./internal/... >> $$out
# The extra LargeField pass doubles the scale-tier sample count: each op
# is one 2 s sim step, so a shared-host noise stretch can swallow all
# three main-pass samples at once; benchcmp's best-of folding only needs
# one clean sample among the six to estimate true capability.

# bench-compare snapshots the newest checked-in baseline, reruns the suite
# (writing the next-numbered snapshot), and diffs the two with the in-repo
# benchcmp tool (a dependency-free benchstat stand-in). It fails on >10%
# throughput regression or on any benchmark leaving the zero-allocation
# set.
bench-compare:
	@set -e; \
	base=$$(ls BENCH_*.json 2>/dev/null | sed -En 's/^BENCH_([0-9]+)\.json$$/\1/p' | sort -n | tail -1); \
	if [ -z "$$base" ]; then echo "bench-compare: no BENCH_N.json baseline found" >&2; exit 2; fi; \
	base=BENCH_$$base.json; \
	$(MAKE) bench; \
	new=BENCH_$$(ls BENCH_*.json | sed -En 's/^BENCH_([0-9]+)\.json$$/\1/p' | sort -n | tail -1).json; \
	echo "bench-compare: $$base -> $$new"; \
	$(GO) run ./cmd/benchcmp -baseline $$base -new $$new \
		-metric sim_s_per_wall_s -max-regress 0.10 -gate-zero-allocs

# profile captures CPU and heap profiles of the Table 1 sweep — the
# communication-heavy workload that exercises the scheduler and radio hot
# paths. Inspect with: go tool pprof cpu.pprof
profile: build
	$(GO) run ./cmd/etsim -exp table1 -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof (go tool pprof <file>)"

# clean removes generated profiles; the numbered BENCH_N.json snapshots
# are version-controlled history and are left alone (git checkout restores
# any uncommitted rerun).
clean:
	rm -f cpu.pprof mem.pprof
