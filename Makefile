GO ?= go

.PHONY: all build test race vet bench bench-compare profile clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates every paper table/figure benchmark plus the substrate
# micro-benchmarks, emitting the machine-readable trajectory the ROADMAP
# tracks. -benchtime 1x keeps the sweep-heavy experiment benches bounded;
# -benchmem records allocs/op and B/op so the zero-allocation core is
# guarded alongside throughput.
# Numbered snapshots: BENCH_1.json predates the observability layer,
# BENCH_2.json includes the tracing-overhead benchmark, BENCH_3.json adds
# -benchmem plus the scheduler-churn and broadcast-fanout benches on the
# pooled zero-allocation core.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -json ./... > BENCH_3.json

# bench-compare reruns the suite and diffs it against the previous
# checked-in snapshot with the in-repo benchcmp tool (a dependency-free
# benchstat stand-in), failing on >10% throughput regression.
bench-compare: bench
	$(GO) run ./cmd/benchcmp -baseline BENCH_2.json -new BENCH_3.json \
		-metric sim_s_per_wall_s -max-regress 0.10

# profile captures CPU and heap profiles of the Table 1 sweep — the
# communication-heavy workload that exercises the scheduler and radio hot
# paths. Inspect with: go tool pprof cpu.pprof
profile: build
	$(GO) run ./cmd/etsim -exp table1 -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof (go tool pprof <file>)"

clean:
	rm -f BENCH_1.json BENCH_2.json BENCH_3.json cpu.pprof mem.pprof
