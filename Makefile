GO ?= go

.PHONY: all build test race vet bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates every paper table/figure benchmark plus the substrate
# micro-benchmarks, emitting the machine-readable trajectory the ROADMAP
# tracks. -benchtime 1x keeps the sweep-heavy experiment benches bounded.
# Numbered snapshots: BENCH_1.json predates the observability layer,
# BENCH_2.json includes the tracing-overhead benchmark.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -json ./... > BENCH_2.json

clean:
	rm -f BENCH_1.json BENCH_2.json
