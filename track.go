package envirotrack

import (
	"time"
)

// VelocityEstimator derives a tracked entity's velocity from the stream of
// position reports its context label produces — the natural downstream
// computation for the paper's pursuer, which "monitors all vehicles at all
// times and records their tracks". Feed it each (time, position) report;
// it fits velocity by least squares over a sliding window, which smooths
// the centroid quantization noise inherent to avg(position).
//
// The zero value is not usable; construct with NewVelocityEstimator.
type VelocityEstimator struct {
	window  time.Duration
	samples []trackSample
}

type trackSample struct {
	at  time.Duration
	pos Point
}

// NewVelocityEstimator creates an estimator that fits over the given
// window (e.g. 3-5 report periods). Non-positive windows default to 15s.
func NewVelocityEstimator(window time.Duration) *VelocityEstimator {
	if window <= 0 {
		window = 15 * time.Second
	}
	return &VelocityEstimator{window: window}
}

// Observe records one position report. Out-of-order samples (older than
// the latest) are ignored.
func (v *VelocityEstimator) Observe(at time.Duration, pos Point) {
	if n := len(v.samples); n > 0 && at <= v.samples[n-1].at {
		return
	}
	v.samples = append(v.samples, trackSample{at: at, pos: pos})
	v.prune(at)
}

func (v *VelocityEstimator) prune(now time.Duration) {
	cutoff := now - v.window
	i := 0
	for i < len(v.samples) && v.samples[i].at < cutoff {
		i++
	}
	if i > 0 {
		v.samples = append(v.samples[:0], v.samples[i:]...)
	}
}

// Samples returns the number of reports inside the window.
func (v *VelocityEstimator) Samples() int {
	return len(v.samples)
}

// Velocity returns the least-squares velocity (grid units per second) over
// the window. It requires at least two samples spanning a non-zero time.
func (v *VelocityEstimator) Velocity() (Vector, bool) {
	n := len(v.samples)
	if n < 2 {
		return Vector{}, false
	}
	// Least squares slope of x(t) and y(t).
	var sumT, sumX, sumY float64
	for _, s := range v.samples {
		sumT += s.at.Seconds()
		sumX += s.pos.X
		sumY += s.pos.Y
	}
	meanT := sumT / float64(n)
	meanX := sumX / float64(n)
	meanY := sumY / float64(n)
	var varT, covTX, covTY float64
	for _, s := range v.samples {
		dt := s.at.Seconds() - meanT
		varT += dt * dt
		covTX += dt * (s.pos.X - meanX)
		covTY += dt * (s.pos.Y - meanY)
	}
	if varT == 0 {
		return Vector{}, false
	}
	return Vec(covTX/varT, covTY/varT), true
}

// Speed returns the magnitude of the velocity estimate.
func (v *VelocityEstimator) Speed() (float64, bool) {
	vel, ok := v.Velocity()
	if !ok {
		return 0, false
	}
	return vel.Len(), true
}

// Predict extrapolates the entity's position at a future time from the
// latest sample and the current velocity estimate (dead reckoning for
// pursuit). It fails when no velocity estimate is available.
func (v *VelocityEstimator) Predict(at time.Duration) (Point, bool) {
	vel, ok := v.Velocity()
	if !ok || len(v.samples) == 0 {
		return Point{}, false
	}
	last := v.samples[len(v.samples)-1]
	dt := (at - last.at).Seconds()
	return last.pos.Add(vel.Scale(dt)), true
}
