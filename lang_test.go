package envirotrack

import (
	"strings"
	"testing"
	"time"
)

const trackerSource = `
begin context tracker
    activation: magnetic_sensor_reading()
    location : avg(position) confidence=2, freshness=1s
    begin object reporter
        invocation: TIMER(1s)
        report_function() {
            send(pursuer, self:label, location);
        }
    end
end context
`

// TestCompiledProgramTracksEndToEnd runs a program written in the
// declaration language through the full simulated network: the paper's
// complete pipeline (source -> preprocessor -> middleware -> tracking).
func TestCompiledProgramTracksEndToEnd(t *testing.T) {
	specs, err := CompileContexts(trackerSource, CompileEnv{
		Destinations: map[string]NodeID{"pursuer": 100},
		Group: GroupConfig{
			HeartbeatPeriod: 250 * time.Millisecond,
			HopsPast:        1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("specs = %d", len(specs))
	}

	n := buildNet(t)
	if err := n.AttachContextAll(specs[0]); err != nil {
		t.Fatal(err)
	}
	pursuer, err := n.AddMote(100, Pt(7, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []LangMessage
	pursuer.OnMessage(func(nm NodeMessage) {
		if m, ok := nm.Payload.(LangMessage); ok {
			msgs = append(msgs, m)
		}
	})
	n.AddTarget(&Target{
		Name: "tank", Kind: "vehicle",
		Traj: Stationary{At: Pt(3.5, 1)}, SignatureRadius: 1.6,
	})
	if err := n.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}

	if len(msgs) == 0 {
		t.Fatal("compiled program produced no reports")
	}
	for _, m := range msgs {
		if m.From == "" {
			t.Error("message missing source label")
		}
		// Values: [self:label, location].
		if len(m.Values) != 2 {
			t.Fatalf("values = %v", m.Values)
		}
		if _, ok := m.Values[0].(Label); !ok {
			t.Errorf("first value = %T, want Label", m.Values[0])
		}
		loc, ok := m.Values[1].(Point)
		if !ok {
			t.Fatalf("second value = %T, want Point", m.Values[1])
		}
		if loc.Dist(Pt(3.5, 1)) > 1.2 {
			t.Errorf("reported location %v far from target", loc)
		}
	}
}

func TestCompiledConditionActionAndLog(t *testing.T) {
	var logged []string
	alarms := 0
	src := `
begin context hotspot
    activation: magnetic > 0.1
    strength : max(magnetic) confidence=1, freshness=1s
    begin object alarm
        invocation: strength > 0.2
        alarm_function() {
            raise(strength);
            log("alarm", strength);
        }
    end
end context
`
	specs, err := CompileContexts(src, CompileEnv{
		Actions: map[string]func(*Ctx, []any){
			"raise": func(_ *Ctx, args []any) { alarms++ },
		},
		Logf: func(format string, args ...any) {
			logged = append(logged, format)
		},
		Group: GroupConfig{HeartbeatPeriod: 250 * time.Millisecond, HopsPast: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	n := buildNet(t)
	if err := n.AttachContextAll(specs[0]); err != nil {
		t.Fatal(err)
	}
	n.AddTarget(&Target{
		Name: "tank", Kind: "vehicle",
		Traj: Stationary{At: Pt(3.5, 1)}, SignatureRadius: 1.6, Amplitude: 10,
	})
	if err := n.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if alarms == 0 {
		t.Error("custom action never invoked")
	}
	if len(logged) == 0 {
		t.Error("log() produced no output")
	}
}

func TestGenerateGoPublic(t *testing.T) {
	src, err := GenerateGo(trackerSource, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "package main") {
		t.Error("default package should be main")
	}
	if !strings.Contains(src, "BuildContexts") {
		t.Error("missing BuildContexts")
	}
}

func TestFormatSourceRoundTrip(t *testing.T) {
	formatted, err := FormatSource(trackerSource)
	if err != nil {
		t.Fatal(err)
	}
	again, err := FormatSource(formatted)
	if err != nil {
		t.Fatal(err)
	}
	if formatted != again {
		t.Error("FormatSource not idempotent")
	}
}

func TestCompileContextsError(t *testing.T) {
	if _, err := CompileContexts("begin context x activation: nope() end context", CompileEnv{}); err == nil {
		t.Error("expected compile error for unknown sensing function")
	}
}
