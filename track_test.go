package envirotrack

import (
	"math"
	"testing"
	"time"
)

func TestVelocityEstimatorBasics(t *testing.T) {
	v := NewVelocityEstimator(20 * time.Second)
	if _, ok := v.Velocity(); ok {
		t.Error("velocity with no samples should be unavailable")
	}
	v.Observe(0, Pt(0, 0))
	if _, ok := v.Velocity(); ok {
		t.Error("velocity with one sample should be unavailable")
	}
	v.Observe(10*time.Second, Pt(2, 0))
	vel, ok := v.Velocity()
	if !ok {
		t.Fatal("velocity unavailable with two samples")
	}
	if math.Abs(vel.DX-0.2) > 1e-9 || math.Abs(vel.DY) > 1e-9 {
		t.Errorf("velocity = %v, want (0.2, 0)", vel)
	}
	speed, ok := v.Speed()
	if !ok || math.Abs(speed-0.2) > 1e-9 {
		t.Errorf("speed = %v, want 0.2", speed)
	}
}

func TestVelocityEstimatorSmoothsNoise(t *testing.T) {
	// Noisy reports around a 0.1 hops/s eastward track: the least-squares
	// fit recovers the underlying velocity.
	v := NewVelocityEstimator(60 * time.Second)
	noise := []float64{0.3, -0.2, 0.25, -0.3, 0.1, -0.15, 0.2, -0.25}
	for i, n := range noise {
		at := time.Duration(i*5) * time.Second
		v.Observe(at, Pt(0.1*at.Seconds()+n, 0.5+n/2))
	}
	vel, ok := v.Velocity()
	if !ok {
		t.Fatal("no velocity")
	}
	if math.Abs(vel.DX-0.1) > 0.03 {
		t.Errorf("smoothed velocity x = %v, want ~0.1", vel.DX)
	}
	if math.Abs(vel.DY) > 0.03 {
		t.Errorf("smoothed velocity y = %v, want ~0", vel.DY)
	}
}

func TestVelocityEstimatorWindowPruning(t *testing.T) {
	v := NewVelocityEstimator(10 * time.Second)
	// An old fast segment followed by a stationary phase: the window must
	// forget the old motion.
	v.Observe(0, Pt(0, 0))
	v.Observe(2*time.Second, Pt(2, 0))
	for at := 20 * time.Second; at <= 30*time.Second; at += 2 * time.Second {
		v.Observe(at, Pt(5, 0))
	}
	if v.Samples() > 6 {
		t.Errorf("samples = %d, want pruned window", v.Samples())
	}
	vel, ok := v.Velocity()
	if !ok {
		t.Fatal("no velocity")
	}
	if vel.Len() > 1e-9 {
		t.Errorf("stationary phase velocity = %v, want 0", vel)
	}
}

func TestVelocityEstimatorIgnoresOutOfOrder(t *testing.T) {
	v := NewVelocityEstimator(time.Minute)
	v.Observe(10*time.Second, Pt(1, 0))
	v.Observe(5*time.Second, Pt(99, 99)) // stale report: dropped
	if v.Samples() != 1 {
		t.Errorf("samples = %d, want 1", v.Samples())
	}
}

func TestVelocityEstimatorPredict(t *testing.T) {
	v := NewVelocityEstimator(time.Minute)
	if _, ok := v.Predict(time.Second); ok {
		t.Error("prediction without samples should fail")
	}
	v.Observe(0, Pt(0, 1))
	v.Observe(10*time.Second, Pt(1, 1))
	got, ok := v.Predict(20 * time.Second)
	if !ok {
		t.Fatal("no prediction")
	}
	if got.Dist(Pt(2, 1)) > 1e-9 {
		t.Errorf("Predict = %v, want (2, 1)", got)
	}
}

func TestVelocityEstimatorSameInstantSamples(t *testing.T) {
	v := NewVelocityEstimator(time.Minute)
	v.Observe(time.Second, Pt(0, 0))
	v.Observe(time.Second, Pt(1, 1)) // duplicate timestamp: dropped
	if _, ok := v.Velocity(); ok {
		t.Error("velocity from a single instant should fail")
	}
}

// TestVelocityEstimatorAgainstSimulatedTrack feeds the estimator real
// tracking reports from a simulated run and compares against the true
// target speed.
func TestVelocityEstimatorAgainstSimulatedTrack(t *testing.T) {
	n := buildNet(t)
	var est = NewVelocityEstimator(20 * time.Second)
	spec := trackerContext(100, nil)
	if err := n.AttachContextAll(spec); err != nil {
		t.Fatal(err)
	}
	pursuer, err := n.AddMote(100, Pt(7, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	pursuer.OnMessage(func(nm NodeMessage) {
		if p, ok := nm.Payload.(Point); ok {
			est.Observe(n.Now(), p)
		}
	})
	n.AddTarget(&Target{
		Kind:            "vehicle",
		Traj:            Line{Start: Pt(-1.5, 1), Dir: Vec(1, 0), Speed: 0.25},
		SignatureRadius: 1.6,
	})
	if err := n.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	speed, ok := est.Speed()
	if !ok {
		t.Fatal("no speed estimate from the simulated track")
	}
	if math.Abs(speed-0.25) > 0.1 {
		t.Errorf("estimated speed = %.3f hops/s, want ~0.25", speed)
	}
}
