package envirotrack

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ShardHealth accumulates the boundary-protocol accounting of sharded
// runs across a sweep: total boundary target receptions, conservative
// lookahead violations, and per shard pair the mailbox frame count plus
// the tightest delivery slack observed over the sender's committed
// horizon. One aggregator may be shared by many runs (Observe locks);
// attach it to the eval harness and render or export the snapshot after
// the sweep. Serial runs contribute nothing.
type ShardHealth struct {
	mu         sync.Mutex
	runs       uint64
	boundary   uint64
	violations uint64
	pairs      map[[2]int]*shardPairAgg
}

type shardPairAgg struct {
	frames   uint64
	minSlack time.Duration
}

// NewShardHealth builds an empty boundary-health aggregator.
func NewShardHealth() *ShardHealth {
	return &ShardHealth{pairs: make(map[[2]int]*shardPairAgg)}
}

// Observe folds one finished run's boundary accounting into the
// aggregate. It is a no-op for unsharded runs.
func (h *ShardHealth) Observe(n *Network) {
	if n.Shards() <= 1 {
		return
	}
	pairs := n.ShardPairStats()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.runs++
	h.boundary += n.BoundaryFrames()
	h.violations += n.LookaheadViolations()
	for _, p := range pairs {
		key := [2]int{p.From, p.To}
		agg, ok := h.pairs[key]
		if !ok {
			agg = &shardPairAgg{minSlack: p.MinSlack}
			h.pairs[key] = agg
		} else if p.MinSlack < agg.minSlack {
			agg.minSlack = p.MinSlack
		}
		agg.frames += p.Frames
	}
}

// ShardHealthSnapshot is a point-in-time copy of a ShardHealth aggregate.
type ShardHealthSnapshot struct {
	Runs                uint64 // sharded runs observed
	BoundaryFrames      uint64
	LookaheadViolations uint64
	Pairs               []ShardPairStat // (From, To) order, aggregated over runs
}

// Snapshot copies the aggregate, with pairs in (From, To) order.
func (h *ShardHealth) Snapshot() ShardHealthSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := ShardHealthSnapshot{
		Runs:                h.runs,
		BoundaryFrames:      h.boundary,
		LookaheadViolations: h.violations,
	}
	for key, agg := range h.pairs {
		snap.Pairs = append(snap.Pairs, ShardPairStat{
			From: key[0], To: key[1], Frames: agg.frames, MinSlack: agg.minSlack,
		})
	}
	sort.Slice(snap.Pairs, func(i, j int) bool {
		if snap.Pairs[i].From != snap.Pairs[j].From {
			return snap.Pairs[i].From < snap.Pairs[j].From
		}
		return snap.Pairs[i].To < snap.Pairs[j].To
	})
	return snap
}

// ExportShardHealth publishes a boundary-health snapshot into a metrics
// registry: envirotrack_boundary_frames_total and
// envirotrack_lookahead_violations_total counters, per-pair
// envirotrack_shard_mailbox_frames_total counters, and per-pair
// envirotrack_shard_mailbox_min_slack_seconds gauges. Like
// ExportSelfProfile it is idempotent: repeated calls advance the
// monotonic counters to the latest snapshot.
func ExportShardHealth(reg *MetricsRegistry, h *ShardHealth) {
	snap := h.Snapshot()
	boundary := reg.Counter("envirotrack_boundary_frames_total",
		"Radio target receptions crossing a shard boundary.")
	if snap.BoundaryFrames > boundary.Value() {
		boundary.Add(snap.BoundaryFrames - boundary.Value())
	}
	violations := reg.Counter("envirotrack_lookahead_violations_total",
		"Cross-shard deliveries that violated the conservative lookahead bound.")
	if snap.LookaheadViolations > violations.Value() {
		violations.Add(snap.LookaheadViolations - violations.Value())
	}
	frames := reg.CounterVec("envirotrack_shard_mailbox_frames_total",
		"Boundary target receptions by ordered shard pair.", "pair")
	slack := reg.GaugeVec("envirotrack_shard_mailbox_min_slack_seconds",
		"Tightest boundary-delivery margin over the sending shard's horizon, by ordered shard pair.", "pair")
	for _, p := range snap.Pairs {
		label := fmt.Sprintf("%d->%d", p.From, p.To)
		if c := frames.With(label); p.Frames > c.Value() {
			c.Add(p.Frames - c.Value())
		}
		slack.With(label).Set(p.MinSlack.Seconds())
	}
}
